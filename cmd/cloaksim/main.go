// Command cloaksim runs one end-to-end non-exposure cloaking request on a
// synthetic population and prints what happened: the cluster, the cloaked
// region, and the two phases' communication costs.
//
// With -load it instead acts as a load generator: -workers concurrent
// clients hammer an in-process centralized anonymizer with -load cloak
// requests drawn from a Zipf(-theta) popularity mix over hosts (0 =
// uniform), reporting throughput, latency percentiles, and the
// realized skew — the harness behind the serving-concurrency numbers
// in CHANGES.md.
//
// With -churn it drives the epoch re-clustering pipeline under a mobile
// population: each tick a fraction of the users move (local-wander
// mobility) and re-upload their proximity rankings, the pipeline
// rotates a new epoch in the background, and concurrent cloak clients
// measure availability across the generation swaps. -ingest-buffers N
// routes the uploads through the sharded coalescing ingest layer
// (see "Sharded upload ingestion" in DESIGN.md).
//
// With -cell it runs one experiment-grid cell (internal/bench): -reps
// repetitions of cold build + churn ticks + a Zipf-skewed request replay
// over the (n, k, churnfrac, workers, ingest-buffers) point, printing
// the aggregated CellResult as JSON.
//
// With -faults it runs the deterministic fault-injection harness: N
// seeded scenarios (message loss, lossy links, loss bursts, node
// crashes, partitions) drive the full two-phase protocol over the
// simulated network and every safety invariant is checked after each
// run. Any violation prints the scenario transcript and exits nonzero.
//
// Usage:
//
//	cloaksim -n 5000 -k 10 -host 42 -bound secure -mode distributed
//	cloaksim -n 20000 -k 10 -load 100000 -workers 32
//	cloaksim -n 5000 -k 10 -churn 20 -churnfrac 0.2
//	cloaksim -cell -n 1000 -k 5 -churnfrac 0.1 -workers 2 -reps 3
//	cloaksim -faults 500 -faultseed 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nonexposure/cloak"
	"nonexposure/internal/anonymizer"
	"nonexposure/internal/bench"
	"nonexposure/internal/cluster"
	"nonexposure/internal/dataset"
	"nonexposure/internal/epoch"
	"nonexposure/internal/geo"
	"nonexposure/internal/lbs"
	"nonexposure/internal/metrics"
	"nonexposure/internal/mobility"
	"nonexposure/internal/service"
	"nonexposure/internal/sim"
	"nonexposure/internal/trace"
	"nonexposure/internal/workload"
	"nonexposure/internal/wpg"
)

// simConfig is everything main parses from flags, separated so
// validation is testable without the flag package.
type simConfig struct {
	n, k, host    int
	seed          int64
	mode, bound   string
	delta         float64
	network       bool
	loss          float64
	nearby        int
	load          int
	workers       int
	churn         int
	churnFrac     float64
	faults        int
	faultSeed     int64
	showTrace     bool
	cell          bool
	reps          int
	ticks         int
	theta         float64
	ingestBuffers int
	profiles      bool
	cluster       bool
	shards        int
	cloakdBin     string
	killShard     int
	failoverAfter time.Duration
}

// validate rejects bad flag combinations up front, before any dataset
// is generated, with messages that name the offending flag.
func (c simConfig) validate() error {
	if c.profiles && c.cell {
		return fmt.Errorf("-profiles and -cell are mutually exclusive (use -cell with a profiles grid via scripts/bench instead)")
	}
	if c.cluster {
		if c.profiles || c.cell || c.faults > 0 {
			return fmt.Errorf("-cluster cannot be combined with -profiles, -cell, or -faults")
		}
		if c.shards < 1 {
			return fmt.Errorf("-shards must be >= 1 with -cluster, got %d", c.shards)
		}
	}
	if c.failoverAfter < 0 {
		return fmt.Errorf("-failover-after must be >= 0, got %v", c.failoverAfter)
	}
	if c.failoverAfter > 0 && !c.cluster {
		return fmt.Errorf("-failover-after requires -cluster")
	}
	if c.killShard >= 0 {
		if !c.cluster {
			return fmt.Errorf("-kill-shard requires -cluster")
		}
		if c.shards < 2 {
			return fmt.Errorf("-kill-shard needs -shards >= 2 so survivors remain, got %d", c.shards)
		}
		if c.killShard >= c.shards {
			return fmt.Errorf("-kill-shard %d out of range [0,%d)", c.killShard, c.shards)
		}
		if c.failoverAfter <= 0 {
			return fmt.Errorf("-kill-shard requires -failover-after > 0 (the run must recover)")
		}
	}
	if c.profiles && (c.load > 0 || c.churn > 0 || c.faults > 0) {
		return fmt.Errorf("-profiles cannot be combined with -load, -churn, or -faults")
	}
	if c.n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", c.n)
	}
	if c.k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", c.k)
	}
	if c.faults < 0 {
		return fmt.Errorf("-faults must be >= 0, got %d", c.faults)
	}
	if c.churn < 0 {
		return fmt.Errorf("-churn must be >= 0, got %d", c.churn)
	}
	if c.load < 0 {
		return fmt.Errorf("-load must be >= 0, got %d", c.load)
	}
	if c.workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", c.workers)
	}
	if c.churn > 0 && (c.churnFrac <= 0 || c.churnFrac > 1) {
		return fmt.Errorf("-churnfrac must be in (0,1], got %g", c.churnFrac)
	}
	if c.loss < 0 || c.loss > 1 {
		return fmt.Errorf("-loss must be in [0,1], got %g", c.loss)
	}
	if c.nearby < 0 {
		return fmt.Errorf("-nearby must be >= 0, got %d", c.nearby)
	}
	if c.delta < 0 {
		return fmt.Errorf("-delta must be >= 0, got %g", c.delta)
	}
	if c.theta < 0 || math.IsNaN(c.theta) || math.IsInf(c.theta, 0) {
		return fmt.Errorf("-theta must be finite and >= 0, got %g", c.theta)
	}
	if c.ingestBuffers < 0 {
		return fmt.Errorf("-ingest-buffers must be >= 0, got %d", c.ingestBuffers)
	}
	if c.cell {
		if c.reps < 1 {
			return fmt.Errorf("-reps must be >= 1, got %d", c.reps)
		}
		if c.ticks < 1 {
			return fmt.Errorf("-ticks must be >= 1 in -cell mode, got %d", c.ticks)
		}
		if c.churnFrac <= 0 || c.churnFrac > 1 {
			return fmt.Errorf("-churnfrac must be in (0,1], got %g", c.churnFrac)
		}
	}
	return nil
}

func main() {
	var cfg simConfig
	flag.IntVar(&cfg.n, "n", 5000, "population size")
	flag.IntVar(&cfg.k, "k", 10, "anonymity level")
	flag.IntVar(&cfg.host, "host", 0, "requesting user id")
	flag.Int64Var(&cfg.seed, "seed", 42, "random seed")
	flag.StringVar(&cfg.mode, "mode", "distributed", "clustering mode: distributed|centralized")
	flag.StringVar(&cfg.bound, "bound", "secure", "bounding: secure|linear|exponential|optimal")
	flag.Float64Var(&cfg.delta, "delta", 0, "radio range (0 = auto for the population size)")
	flag.BoolVar(&cfg.network, "network", false, "run the protocols over a simulated p2p message network")
	flag.Float64Var(&cfg.loss, "loss", 0, "message loss rate for -network")
	flag.IntVar(&cfg.nearby, "nearby", 3, "after cloaking, fetch this many nearest POIs (0 = skip)")
	flag.IntVar(&cfg.load, "load", 0, "load-generator mode: issue this many concurrent cloak requests (0 = off)")
	flag.IntVar(&cfg.workers, "workers", 16, "concurrent clients for -load and -churn")
	flag.IntVar(&cfg.churn, "churn", 0, "churn mode: run this many mobility ticks through the epoch pipeline (0 = off)")
	flag.Float64Var(&cfg.churnFrac, "churnfrac", 0.2, "fraction of users re-uploading per churn tick")
	flag.IntVar(&cfg.faults, "faults", 0, "fault-injection mode: run this many seeded fault scenarios (0 = off)")
	flag.Int64Var(&cfg.faultSeed, "faultseed", 1, "first scenario seed for -faults")
	flag.BoolVar(&cfg.showTrace, "trace", false, "print the span tree of the cloak request (single-request mode)")
	flag.BoolVar(&cfg.cell, "cell", false, "grid-cell mode: run one bench cell (n,k,churnfrac,workers) and print its CellResult as JSON")
	flag.IntVar(&cfg.reps, "reps", 1, "repetitions per cell for -cell")
	flag.IntVar(&cfg.ticks, "ticks", 4, "churn ticks per rep for -cell")
	flag.Float64Var(&cfg.theta, "theta", 0.8, "Zipf skew of the request mix for -cell and -load")
	flag.IntVar(&cfg.ingestBuffers, "ingest-buffers", 0, "buffered upload ingestion shards for -churn and -cell (0 = direct)")
	flag.BoolVar(&cfg.profiles, "profiles", false, "utility-frontier mode: run the mixed privacy-profile tier mix through the epoch pipeline and report per-tier cloak area vs candidate-set size")
	flag.BoolVar(&cfg.cluster, "cluster", false, "cluster mode: bring up a sharded cloakd cluster behind a routing coordinator and run the churn+load workload against it")
	flag.IntVar(&cfg.shards, "shards", 2, "shard count for -cluster")
	flag.StringVar(&cfg.cloakdBin, "cloakd-bin", "", "path to a cloakd binary for -cluster: spawn shards as separate OS processes (empty = in-process shards)")
	flag.IntVar(&cfg.killShard, "kill-shard", -1, "with -cluster: kill this shard after the first epoch and require fail-over to recover every user (-1 = off)")
	flag.DurationVar(&cfg.failoverAfter, "failover-after", 0, "with -cluster: declare a failing shard dead after this long and re-home its users onto survivors (0 = fail-over disabled)")
	flag.Parse()
	err := cfg.validate()
	if err == nil {
		switch {
		case cfg.cluster:
			err = runCluster(cfg)
		case cfg.profiles:
			err = runProfiles(cfg)
		case cfg.cell:
			err = runGridCell(cfg)
		case cfg.faults > 0:
			err = runFaults(cfg.faults, cfg.faultSeed)
		case cfg.churn > 0:
			err = runChurn(cfg.n, cfg.k, cfg.seed, cfg.delta, cfg.churn, cfg.churnFrac, cfg.workers, cfg.ingestBuffers)
		case cfg.load > 0:
			err = runLoad(cfg.n, cfg.k, cfg.seed, cfg.delta, cfg.load, cfg.workers, cfg.theta)
		default:
			err = run(cfg.n, cfg.k, cfg.host, cfg.seed, cfg.mode, cfg.bound, cfg.delta,
				cfg.network, cfg.loss, cfg.nearby, cfg.showTrace)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloaksim:", err)
		os.Exit(1)
	}
}

// runGridCell is the experiment-grid entry point: one bench cell over
// the flag-selected (n, k, churnfrac, workers) point, repeated -reps
// times, with the aggregated CellResult printed as JSON so scripts/bench
// (or anything else) can drive cells out of process. -load sets the
// request count when nonzero.
func runGridCell(cfg simConfig) error {
	requests := cfg.load
	if requests == 0 {
		requests = 2000
	}
	res, err := bench.RunCell(
		bench.CellParams{N: cfg.n, K: cfg.k, ChurnFrac: cfg.churnFrac, Workers: cfg.workers, IngestBuffers: cfg.ingestBuffers},
		bench.CellConfig{Ticks: cfg.ticks, Requests: requests, Theta: cfg.theta, Seed: cfg.seed, Reps: cfg.reps},
	)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// runChurn is the epoch-pipeline workload: a mobile population keeps
// re-uploading while concurrent clients cloak, and the report shows how
// availability held up across the background generation swaps.
func runChurn(n, k int, seed int64, delta float64, ticks int, frac float64, workers, ingestBuffers int) error {
	if workers < 1 {
		workers = 1
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("churnfrac %v outside (0,1]", frac)
	}
	if delta == 0 {
		delta = 2e-3 * math.Sqrt(104770.0/float64(n))
	}
	pts := dataset.CaliforniaLike(n, seed)
	model, err := mobility.NewLocalWander(pts, delta, delta/4, delta/2, seed)
	if err != nil {
		return err
	}
	em := metrics.NewEpochMetrics()
	mgr, err := epoch.New(n, epoch.WithK(k), epoch.WithMetrics(em),
		epoch.WithIngestBuffers(ingestBuffers))
	if err != nil {
		return err
	}
	defer mgr.Close()

	// uploadAll derives every listed user's ranked peer list from the WPG
	// over the current positions and feeds it to the pipeline.
	ctx := context.Background()
	uploadFrom := func(g *wpg.Graph, users []int32) error {
		for _, v := range users {
			var peers []epoch.RankedPeer
			for _, e := range g.Neighbors(v) {
				peers = append(peers, epoch.RankedPeer{Peer: e.To, Rank: e.W})
			}
			if err := mgr.Upload(ctx, epoch.UploadRequest{User: v, Peers: peers}); err != nil {
				return err
			}
		}
		return nil
	}

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	g := wpg.Build(model.Positions(), wpg.BuildParams{Delta: delta, MaxPeers: 10})
	if err := uploadFrom(g, all); err != nil {
		return err
	}
	if _, err := mgr.Rotate(ctx); err != nil {
		return err
	}
	if err := mgr.Sync(ctx); err != nil {
		return err
	}
	fmt.Printf("churn: epoch 1 live (%d users, %d edges); %d ticks re-uploading %.0f%% per tick\n",
		n, mgr.Current().Edges, ticks, frac*100)

	// The cloak hammer runs for the whole churn, counting availability.
	var (
		wg                   sync.WaitGroup
		served, unclust, bad atomic.Int64
		minEp, maxEp         atomic.Uint64
	)
	minEp.Store(^uint64(0))
	reqm := metrics.NewRequestMetrics()
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := int32(w * 2654435761 % n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				host = int32((int64(host)*48271 + 1) % int64(n))
				t0 := time.Now()
				res, err := mgr.Cloak(context.Background(), host)
				ep := res.Epoch
				reqm.Observe("cloak", time.Since(t0), err == nil)
				switch {
				case err == nil:
					served.Add(1)
					for old := minEp.Load(); ep < old && !minEp.CompareAndSwap(old, ep); old = minEp.Load() {
					}
					for old := maxEp.Load(); ep > old && !maxEp.CompareAndSwap(old, ep); old = maxEp.Load() {
					}
				case strings.Contains(err.Error(), "smaller than k"):
					unclust.Add(1)
				default:
					bad.Add(1)
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(seed))
	perTick := int(frac * float64(n))
	if perTick < 1 {
		perTick = 1
	}
	for tick := 0; tick < ticks; tick++ {
		model.Step(1)
		g := wpg.Build(model.Positions(), wpg.BuildParams{Delta: delta, MaxPeers: 10})
		moved := rng.Perm(n)[:perTick]
		users := make([]int32, perTick)
		for i, u := range moved {
			users[i] = int32(u)
		}
		if err := uploadFrom(g, users); err != nil {
			close(stop)
			wg.Wait()
			return err
		}
		if _, err := mgr.Rotate(ctx); err != nil && err != epoch.ErrNoNewUploads {
			close(stop)
			wg.Wait()
			return err
		}
	}
	if err := mgr.Sync(ctx); err != nil {
		return err
	}
	close(stop)
	wg.Wait()

	total := served.Load() + unclust.Load() + bad.Load()
	snap := reqm.Snapshot()
	es := em.Snapshot()
	fmt.Printf("churn: %d cloaks from %d workers across epochs %d..%d\n",
		total, workers, minEp.Load(), maxEp.Load())
	fmt.Printf("churn: availability %.3f%% (%d served, %d unclusterable, %d hard failures)\n",
		100*float64(served.Load())/float64(total), served.Load(), unclust.Load(), bad.Load())
	fmt.Printf("churn: cloak latency p50=%v p95=%v p99=%v\n", snap.P50, snap.P95, snap.P99)
	fmt.Printf("churn: pipeline %s\n", es)
	if es.ShardsTotal > 0 {
		fmt.Printf("churn: shard reuse %.1f%% (%d of %d shards spliced from the previous generation)\n",
			100*(1-float64(es.ShardsRebuilt)/float64(es.ShardsTotal)),
			es.ShardsTotal-es.ShardsRebuilt, es.ShardsTotal)
	}
	if bad.Load() > 0 {
		return fmt.Errorf("%d cloaks failed hard during swaps", bad.Load())
	}
	return nil
}

// runProfiles is the utility-frontier mode: the mixed privacy-profile
// tier mix (bench.ProfileMixMixed — 70% default, 20% k_i=2k, 10%
// k_i=2k plus a tight MaxArea) over a static CaliforniaLike population,
// pushed through the epoch pipeline, then measured from the user's
// side. For every user it cloaks, takes the cluster's bounding box as
// the cloaked region, and asks an LBS built over the same points for
// the RangeNN candidate superset — so the table shows what each tier's
// extra privacy buys (effective k) and costs (cloak area, candidate
// POIs shipped, degraded answers). Everything is seeded: the frontier
// is reproducible.
func runProfiles(cfg simConfig) error {
	n, k, seed := cfg.n, cfg.k, cfg.seed
	delta := cfg.delta
	if delta == 0 {
		delta = 2e-3 * math.Sqrt(104770.0/float64(n))
	}
	nn := cfg.nearby
	if nn < 1 {
		nn = 3
	}
	pts := dataset.CaliforniaLike(n, seed)
	profs := bench.ProfileMix(bench.ProfileMixMixed, n, k, delta, seed)
	bbox := func(members []int32) geo.Rect {
		r := geo.EmptyRect()
		for _, v := range members {
			r = r.ExpandToInclude(pts[v])
		}
		return r
	}
	mgr, err := epoch.New(n, epoch.WithK(k), epoch.WithWorkers(cfg.workers),
		epoch.WithAreaEstimator(func(members []int32) (float64, bool) {
			return bbox(members).Area(), true
		}))
	if err != nil {
		return err
	}
	defer mgr.Close()

	ctx := context.Background()
	g := wpg.Build(pts, wpg.BuildParams{Delta: delta, MaxPeers: 10})
	for v := int32(0); v < int32(n); v++ {
		var peers []epoch.RankedPeer
		for _, e := range g.Neighbors(v) {
			peers = append(peers, epoch.RankedPeer{Peer: e.To, Rank: e.W})
		}
		prof := profs[v] // zero for unprofiled users: the explicit default
		if err := mgr.Upload(ctx, epoch.UploadRequest{User: v, Peers: peers, Profile: &prof}); err != nil {
			return err
		}
	}
	if _, err := mgr.Rotate(ctx); err != nil {
		return err
	}
	if err := mgr.Sync(ctx); err != nil {
		return err
	}
	st := mgr.Status()
	fmt.Printf("profiles: %d users, k=%d, %d profiled (k_max=%d), %d edges, %d clusters, %d unclusterable\n",
		n, k, st.Profiled, st.KMax, st.Edges, st.Clusters, st.Skipped)

	// The LBS serves the population's own points as POIs — the standard
	// self-join stand-in when no separate POI set is configured.
	srv, err := lbs.NewServer(pts, 1)
	if err != nil {
		return err
	}

	tierOf := func(u int32) string {
		p, ok := profs[u]
		switch {
		case !ok:
			return "default"
		case p.MaxArea > 0:
			return "2k+area"
		default:
			return "2k"
		}
	}
	type tally struct {
		users, served, unclust, degraded int
		effK, area, cands                float64
	}
	tiers := map[string]*tally{"default": {}, "2k": {}, "2k+area": {}}
	for u := int32(0); u < int32(n); u++ {
		ty := tiers[tierOf(u)]
		ty.users++
		res, err := mgr.Cloak(ctx, u)
		if err != nil {
			ty.unclust++
			continue
		}
		ty.served++
		ty.effK += float64(res.EffectiveK)
		r := bbox(res.Cluster.Members)
		ty.area += r.Area()
		cands, _ := srv.RangeNNQuery(r, nn)
		ty.cands += float64(len(cands))
		if res.Degraded {
			ty.degraded++
		}
	}

	fmt.Printf("profiles: utility frontier (RangeNN k=%d, POIs = population points)\n", nn)
	fmt.Printf("%-10s %7s %7s %8s %10s %10s %9s\n",
		"tier", "users", "served", "eff_k", "area", "cands", "degraded")
	for _, name := range []string{"default", "2k", "2k+area"} {
		ty := tiers[name]
		div := float64(ty.served)
		if div == 0 {
			div = 1
		}
		fmt.Printf("%-10s %7d %7d %8.1f %10.3g %10.1f %9d\n",
			name, ty.users, ty.served, ty.effK/div, ty.area/div, ty.cands/div, ty.degraded)
	}
	return nil
}

// runFaults is the fault-injection mode: `count` generated scenarios
// starting at seed `base`, each checked against the full invariant
// registry. The per-kind summary shows how hard each fault class hit
// the protocols; any invariant violation dumps the deterministic
// transcript (re-runnable with -faultseed) and fails the command.
func runFaults(count int, base int64) error {
	type tally struct {
		scenarios, runs, clustered, bounded, degraded int
		lost                                          uint64
	}
	perKind := make(map[string]*tally)
	var violations int
	fmt.Printf("faults: %d scenarios from seed %d\n", count, base)
	for seed := base; seed < base+int64(count); seed++ {
		sc := sim.Generate(seed)
		rep, err := sim.Run(sc)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		ty := perKind[sc.Kind.String()]
		if ty == nil {
			ty = &tally{}
			perKind[sc.Kind.String()] = ty
		}
		ty.scenarios++
		ty.lost += rep.Lost
		for i := range rep.Runs {
			run := &rep.Runs[i]
			ty.runs++
			if run.ClusterErr == nil {
				ty.clustered++
			}
			if run.HasRect {
				ty.bounded++
			}
			if run.Degraded() {
				ty.degraded++
			}
		}
		if v := rep.Violations(); len(v) > 0 {
			violations += len(v)
			fmt.Printf("faults: scenario %s VIOLATED:\n", sc.Name)
			for _, msg := range v {
				fmt.Printf("  %s\n", msg)
			}
			fmt.Printf("  transcript (%d events):\n", len(rep.Transcript))
			for _, line := range rep.Transcript {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	for kind := sim.FaultNone; kind < sim.NumFaultKinds(); kind++ {
		ty := perKind[kind.String()]
		if ty == nil {
			continue
		}
		fmt.Printf("faults: %-10s %3d scenarios, %3d requests: %3d clustered, %3d bounded, %3d degraded, %6d lost msgs\n",
			kind, ty.scenarios, ty.runs, ty.clustered, ty.bounded, ty.degraded, ty.lost)
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violations", violations)
	}
	fmt.Println("faults: all invariants held")
	return nil
}

// runLoad is the load-generator mode: a centralized anonymizer serving
// `requests` cloak calls from `workers` concurrent clients, with hosts
// drawn from a Zipf(theta) popularity distribution so hot users are
// hammered the way real traffic hammers hot cells (theta 0 = uniform).
// The very first request triggers the component-parallel whole-graph
// clustering; everything after rides the registry read path.
func runLoad(n, k int, seed int64, delta float64, requests, workers int, theta float64) error {
	if workers < 1 {
		workers = 1
	}
	if delta == 0 {
		delta = 2e-3 * math.Sqrt(104770.0/float64(n))
	}
	pts := dataset.CaliforniaLike(n, seed)
	g := wpg.Build(pts, wpg.BuildParams{Delta: delta, MaxPeers: 10})
	fmt.Printf("load: %d users, %d proximity edges, %d components\n",
		g.NumVertices(), g.NumEdges(), len(g.Components()))

	// Draw the whole request stream up front (seeded: reruns replay the
	// same stream) and measure the skew we actually realized rather than
	// restating the theta parameter.
	hosts, err := workload.ZipfHosts(n, requests, theta, seed+1)
	if err != nil {
		return err
	}
	perHost := make(map[int32]int, n)
	for _, h := range hosts {
		perHost[h]++
	}
	counts := make([]int, 0, len(perHost))
	for _, c := range perHost {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := len(counts) / 100
	if top < 1 {
		top = 1
	}
	topShare := 0
	for _, c := range counts[:top] {
		topShare += c
	}
	fmt.Printf("load: zipf theta=%g request mix: %d distinct hosts, top 1%% of hosts take %.1f%% of requests\n",
		theta, len(perHost), 100*float64(topShare)/float64(requests))

	anon := anonymizer.NewServer(g, anonymizer.WithK(k))
	m := metrics.NewRequestMetrics()

	buildStart := time.Now()
	if _, cost, err := anon.Cloak(context.Background(), 0); err == nil {
		fmt.Printf("load: first request clustered the graph in %v (billed %d messages)\n",
			time.Since(buildStart), cost)
	} else {
		fmt.Printf("load: first request: %v\n", err)
	}

	var (
		wg     sync.WaitGroup
		failMu sync.Mutex
		fails  int
	)
	start := time.Now()
	per := requests / workers
	extra := requests % workers
	next := 0
	for w := 0; w < workers; w++ {
		count := per
		if w < extra {
			count++
		}
		mine := hosts[next : next+count]
		next += count
		wg.Add(1)
		go func(mine []int32) {
			defer wg.Done()
			for _, host := range mine {
				t0 := time.Now()
				_, _, err := anon.Cloak(context.Background(), host)
				m.Observe("cloak", time.Since(t0), err == nil)
				if err != nil {
					failMu.Lock()
					fails++
					failMu.Unlock()
				}
			}
		}(mine)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := m.Snapshot()
	fmt.Printf("load: %d requests from %d workers in %v (%.0f req/s)\n",
		snap.Total, workers, elapsed.Round(time.Millisecond), float64(snap.Total)/elapsed.Seconds())
	fmt.Printf("load: %d unclusterable hosts (undersized components)\n", fails)
	fmt.Printf("load: latency p50=%v p95=%v p99=%v\n", snap.P50, snap.P95, snap.P99)
	fmt.Printf("load: %d clusters cover %d of %d users\n",
		anon.Registry().NumClusters(), anon.Registry().NumAssigned(), n)
	return nil
}

func run(n, k, host int, seed int64, mode, bound string, delta float64, overNet bool, loss float64, nearby int, showTrace bool) error {
	cfg := cloak.DefaultConfig()
	cfg.K = k
	switch mode {
	case "distributed":
		cfg.Mode = cloak.ModeDistributed
	case "centralized":
		cfg.Mode = cloak.ModeCentralized
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	switch bound {
	case "secure":
		cfg.Bound = cloak.BoundSecure
	case "linear":
		cfg.Bound = cloak.BoundLinear
	case "exponential":
		cfg.Bound = cloak.BoundExponential
	case "optimal":
		cfg.Bound = cloak.BoundOptimal
	default:
		return fmt.Errorf("unknown bounding algorithm %q", bound)
	}
	if delta == 0 {
		// Keep the expected radio-neighbor count at the paper's default
		// regardless of population size.
		delta = 2e-3 * math.Sqrt(104770.0/float64(n))
	}
	cfg.Delta = delta

	pts := dataset.CaliforniaLike(n, seed)
	users := make([]cloak.Point, n)
	for i, p := range pts {
		users[i] = cloak.Point{X: p.X, Y: p.Y}
	}
	if host < 0 || host >= n {
		return fmt.Errorf("host %d out of range [0,%d)", host, n)
	}

	var (
		res error
		r   cloak.Result
	)
	if overNet {
		sys, err := cloak.NewNetworkSystem(users, cfg, cloak.NetworkConfig{
			LossRate: loss, MaxRetries: 50, Seed: seed,
		})
		if err != nil {
			return err
		}
		defer sys.Close()
		fmt.Printf("population: %d users, avg proximity degree %.1f (message network, loss=%.0f%%)\n",
			sys.NumUsers(), sys.AvgDegree(), loss*100)
		r, res = sys.Cloak(host)
		if res == nil {
			fmt.Printf("wire: %d transmissions, %d lost\n", sys.MessagesSent(), sys.MessagesLost())
		}
	} else {
		sys, err := cloak.NewSystem(users, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("population: %d users, avg proximity degree %.1f\n", sys.NumUsers(), sys.AvgDegree())
		if showTrace {
			sp := trace.New("request.cloak")
			r, res = sys.CloakCtx(trace.NewContext(context.Background(), sp), host)
			sp.End()
			fmt.Printf("trace:\n%s\n", sp)
		} else {
			r, res = sys.Cloak(host)
		}
	}
	if res != nil {
		return res
	}
	if showTrace && overNet {
		fmt.Println("trace: span tracing covers the in-process system only; rerun without -network")
	}

	fmt.Printf("host %d at (%.5f, %.5f)\n", host, users[host].X, users[host].Y)
	fmt.Printf("cluster: %d users (phase-1 cost: %d messages, cached=%v)\n",
		r.ClusterSize, r.ClusterComm, r.CachedCluster)
	fmt.Printf("cloaked region: [%.5f, %.5f] x [%.5f, %.5f], area %.3g\n",
		r.Region.MinX, r.Region.MaxX, r.Region.MinY, r.Region.MaxY, r.Region.Area())
	fmt.Printf("bounding: %.0f messages in %d rounds (%s, cached=%v)\n",
		r.BoundMessages, r.BoundRounds, bound, r.CachedRegion)
	if !r.Region.Contains(users[host]) {
		return fmt.Errorf("internal error: region does not contain the host")
	}

	if nearby > 0 {
		db, err := cloak.NewPOIDatabase(users, cfg.Cr)
		if err != nil {
			return err
		}
		cands, cost := db.NearestCandidates(r.Region, nearby)
		best := db.ResolveNearest(cands, users[host], nearby)
		fmt.Printf("service request: %d candidate POIs shipped (cost %.0f), %d resolved locally:\n",
			len(cands), cost, len(best))
		for _, id := range best {
			p := db.POI(id)
			fmt.Printf("  POI %d at (%.5f, %.5f)\n", id, p.X, p.Y)
		}
	}
	return nil
}

// runCluster is the multi-process acceptance workload: it brings up
// -shards cloakd shards (in this process, or as child processes when
// -cloakd-bin is given), fronts them with a routing coordinator, and
// drives the same churn+load shape as -churn — except every upload and
// cloak crosses the real v1 wire protocol and shard routing. After the
// churn it sweeps the full population so "unserved" is an exact count,
// not a sample: a user is unserved only if the cluster returned a hard
// error (legitimately sub-k components don't count — a single cloakd
// rejects those too). It finishes by scraping each shard's /metrics and
// printing the coordinator's routing counters.
func runCluster(cfg simConfig) error {
	n, k, seed := cfg.n, cfg.k, cfg.seed
	nShards := cfg.shards
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	ticks := cfg.churn
	if ticks == 0 {
		ticks = 2
	}
	frac := cfg.churnFrac
	delta := cfg.delta
	if delta == 0 {
		delta = 2e-3 * math.Sqrt(104770.0/float64(n))
	}
	pts := dataset.CaliforniaLike(n, seed)
	keys, err := cluster.HilbertKeys(pts, cluster.DefaultKeyOrder)
	if err != nil {
		return err
	}
	model, err := mobility.NewLocalWander(pts, delta, delta/4, delta/2, seed)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mode := "in-process"
	var shards []*cluster.Shard
	if cfg.cloakdBin != "" {
		mode = "child-process"
		shards, err = cluster.SpawnProcesses(ctx, cfg.cloakdBin, nShards,
			cluster.ShardConfig{NumUsers: n, K: k, Workers: workers})
	} else {
		shards, err = cluster.SpawnInProcess(ctx, nShards,
			cluster.ShardConfig{NumUsers: n, K: k, Workers: workers, Admin: true})
	}
	if err != nil {
		return err
	}
	defer cluster.CloseShards(shards)

	cm := metrics.NewClusterMetrics()
	copts := []cluster.Option{
		cluster.WithNumUsers(n),
		cluster.WithK(k),
		cluster.WithShardAddrs(cluster.Addrs(shards)...),
		cluster.WithKeys(keys),
		cluster.WithClusterMetrics(cm),
	}
	if cfg.failoverAfter > 0 {
		copts = append(copts, cluster.WithFailover(cluster.Failover{DeadAfter: cfg.failoverAfter}))
	}
	coord, err := cluster.New(copts...)
	if err != nil {
		return err
	}
	defer coord.Close()
	fmt.Printf("cluster: %d %s shards, population %d, k=%d, delta %.3g\n",
		nShards, mode, n, k, delta)

	uploadFrom := func(g *wpg.Graph, users []int32) error {
		for _, v := range users {
			var peers []service.PeerRank
			for _, e := range g.Neighbors(v) {
				peers = append(peers, service.PeerRank{Peer: e.To, Rank: e.W})
			}
			if err := coord.Upload(ctx, cluster.UploadRequest{User: v, Peers: peers}); err != nil {
				return fmt.Errorf("upload user %d: %w", v, err)
			}
		}
		return nil
	}

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	t0 := time.Now()
	g := wpg.Build(model.Positions(), wpg.BuildParams{Delta: delta, MaxPeers: 10})
	if err := uploadFrom(g, all); err != nil {
		return err
	}
	st, err := coord.Rotate(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: epoch %d live in %v (%d components, %d edges, %d border replays)\n",
		st.Epoch, time.Since(t0).Round(time.Millisecond), st.Components, st.Edges, st.Moves)

	// Crash drill: kill one shard after the first epoch is live. The rest
	// of the run must degrade to retries, never hard failures, and end
	// with every user served by the survivors.
	failedOver := 0
	if cfg.killShard >= 0 {
		fmt.Printf("cluster: killing shard %d (%s)\n", cfg.killShard, shards[cfg.killShard].Addr)
		_ = shards[cfg.killShard].Kill()
	}

	// Concurrent cloak hammer for the whole churn phase, like -churn but
	// through the coordinator.
	var (
		wg                   sync.WaitGroup
		served, unclust, bad atomic.Int64
	)
	reqm := metrics.NewRequestMetrics()
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := int32(w * 2654435761 % n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				host = int32((int64(host)*48271 + 1) % int64(n))
				t0 := time.Now()
				_, err := coord.Cloak(context.Background(), host)
				reqm.Observe("cloak", time.Since(t0), err == nil)
				switch {
				case err == nil:
					served.Add(1)
				case strings.Contains(err.Error(), "smaller than k"):
					unclust.Add(1)
				default:
					bad.Add(1)
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(seed))
	perTick := int(frac * float64(n))
	if perTick < 1 {
		perTick = 1
	}
	for tick := 1; tick <= ticks; tick++ {
		model.Step(1)
		g := wpg.Build(model.Positions(), wpg.BuildParams{Delta: delta, MaxPeers: 10})
		moved := rng.Perm(n)[:perTick]
		users := make([]int32, perTick)
		for i, u := range moved {
			users[i] = int32(u)
		}
		if err := uploadFrom(g, users); err != nil {
			close(stop)
			wg.Wait()
			return err
		}
		st, err := coord.Rotate(ctx)
		if err != nil {
			close(stop)
			wg.Wait()
			return err
		}
		failedOver += st.FailedOver
		fmt.Printf("cluster: tick %d rotated to epoch %d (%d users re-homed)\n",
			tick, st.Epoch, st.Moves)
	}

	// After a kill, keep rotating (cloak load still running) until a
	// rotation declares the shard dead and re-homes its users.
	if cfg.killShard >= 0 {
		deadline := time.Now().Add(30 * time.Second)
		for failedOver == 0 && time.Now().Before(deadline) {
			time.Sleep(250 * time.Millisecond)
			st, err := coord.Rotate(ctx)
			if err != nil {
				close(stop)
				wg.Wait()
				return err
			}
			failedOver += st.FailedOver
		}
		if failedOver == 0 {
			close(stop)
			wg.Wait()
			return fmt.Errorf("shard %d was killed but never failed over", cfg.killShard)
		}
		fmt.Printf("cluster: failed over %d users off dead shard %d\n", failedOver, cfg.killShard)
	}
	close(stop)
	wg.Wait()

	total := served.Load() + unclust.Load() + bad.Load()
	snap := reqm.Snapshot()
	fmt.Printf("cluster: churn load %d cloaks from %d workers: %d served, %d unclusterable, %d hard failures\n",
		total, workers, served.Load(), unclust.Load(), bad.Load())
	fmt.Printf("cluster: cloak latency p50=%v p95=%v p99=%v\n", snap.P50, snap.P95, snap.P99)

	// Full-population sweep: every user must be either served or
	// legitimately sub-k. Anything else counts as unserved.
	var swServed, swUnclust, swBad atomic.Int64
	var swg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		swg.Add(1)
		go func(lo, hi int32) {
			defer swg.Done()
			for u := lo; u < hi; u++ {
				_, err := coord.Cloak(context.Background(), u)
				switch {
				case err == nil:
					swServed.Add(1)
				case strings.Contains(err.Error(), "smaller than k"):
					swUnclust.Add(1)
				default:
					swBad.Add(1)
				}
			}
		}(int32(lo), int32(hi))
	}
	swg.Wait()
	fmt.Printf("cluster: sweep of all %d users: %d served, %d unclusterable, unserved=%d\n",
		n, swServed.Load(), swUnclust.Load(), swBad.Load())

	// Per-shard view, over each shard's own admin endpoint.
	for i, s := range shards {
		if s.AdminAddr == "" {
			continue
		}
		if i == cfg.killShard {
			fmt.Printf("cluster: shard %d (%s): killed, no scrape\n", i, s.Addr)
			continue
		}
		reqs, errs, swaps, err := scrapeShard(s.AdminAddr)
		if err != nil {
			fmt.Printf("cluster: shard %d /metrics: %v\n", i, err)
			continue
		}
		fmt.Printf("cluster: shard %d (%s): %d requests, %d errors, %d epoch swaps\n",
			i, s.Addr, reqs, errs, swaps)
	}
	cs := cm.Snapshot()
	fmt.Printf("cluster: coordinator %s\n", cs)
	for _, op := range cs.Routed {
		fmt.Printf("cluster: routed %s=%d\n", op.Op, op.Count)
	}

	if err := coord.Close(); err != nil {
		return err
	}
	if err := cluster.CloseShards(shards); err != nil {
		return err
	}
	fmt.Println("cluster: clean shutdown")
	if nBad := bad.Load() + swBad.Load(); nBad > 0 {
		return fmt.Errorf("%d cloaks failed hard", nBad)
	}
	return nil
}

// scrapeShard fetches one shard's Prometheus /metrics page and folds it
// to the three numbers the cluster report prints: total requests, total
// request errors, and completed epoch swaps.
func scrapeShard(adminAddr string) (reqs, errs, swaps uint64, err error) {
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, perr := strconv.ParseUint(fields[1], 10, 64)
		if perr != nil {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], "cloakd_requests_total{"):
			reqs += v
		case strings.HasPrefix(fields[0], "cloakd_request_errors_total{"):
			errs += v
		case fields[0] == "cloakd_epoch_swaps_total":
			swaps = v
		}
	}
	return reqs, errs, swaps, nil
}
