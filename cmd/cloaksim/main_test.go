package main

import (
	"math"
	"strings"
	"testing"
)

func TestSimConfigValidate(t *testing.T) {
	valid := simConfig{n: 5000, k: 10, workers: 16, churnFrac: 0.2, nearby: 3, killShard: -1}
	tests := []struct {
		name    string
		mutate  func(*simConfig)
		wantErr string // "" = valid
	}{
		{"defaults", func(c *simConfig) {}, ""},
		{"churn mode", func(c *simConfig) { c.churn = 20 }, ""},
		{"faults mode", func(c *simConfig) { c.faults = 100 }, ""},
		{"zero population", func(c *simConfig) { c.n = 0 }, "-n must be >= 1"},
		{"zero k", func(c *simConfig) { c.k = 0 }, "-k must be >= 1"},
		{"negative faults", func(c *simConfig) { c.faults = -1 }, "-faults must be >= 0"},
		{"negative churn", func(c *simConfig) { c.churn = -3 }, "-churn must be >= 0"},
		{"negative load", func(c *simConfig) { c.load = -1 }, "-load must be >= 0"},
		{"zero workers", func(c *simConfig) { c.workers = 0 }, "-workers must be >= 1"},
		{"churnfrac zero with churn", func(c *simConfig) { c.churn = 5; c.churnFrac = 0 }, "-churnfrac must be in (0,1]"},
		{"churnfrac above one with churn", func(c *simConfig) { c.churn = 5; c.churnFrac = 1.2 }, "-churnfrac must be in (0,1]"},
		{"churnfrac ignored without churn", func(c *simConfig) { c.churnFrac = 7 }, ""},
		{"negative loss", func(c *simConfig) { c.loss = -0.5 }, "-loss must be in [0,1]"},
		{"loss above one", func(c *simConfig) { c.loss = 1.5 }, "-loss must be in [0,1]"},
		{"negative nearby", func(c *simConfig) { c.nearby = -1 }, "-nearby must be >= 0"},
		{"negative delta", func(c *simConfig) { c.delta = -1e-3 }, "-delta must be >= 0"},
		{"cell mode", func(c *simConfig) { c.cell = true; c.reps = 1; c.ticks = 2; c.theta = 0.8 }, ""},
		{"cell zero reps", func(c *simConfig) { c.cell = true; c.ticks = 2 }, "-reps must be >= 1"},
		{"cell zero ticks", func(c *simConfig) { c.cell = true; c.reps = 1 }, "-ticks must be >= 1"},
		{"cell negative theta", func(c *simConfig) { c.cell = true; c.reps = 1; c.ticks = 2; c.theta = -1 }, "-theta must be finite"},
		{"cell nan theta", func(c *simConfig) { c.cell = true; c.reps = 1; c.ticks = 2; c.theta = math.NaN() }, "-theta must be finite"},
		{"load negative theta", func(c *simConfig) { c.load = 100; c.theta = -0.5 }, "-theta must be finite"},
		{"load zipf theta", func(c *simConfig) { c.load = 100; c.theta = 1.0 }, ""},
		{"negative ingest-buffers", func(c *simConfig) { c.ingestBuffers = -1 }, "-ingest-buffers must be >= 0"},
		{"churn with ingest-buffers", func(c *simConfig) { c.churn = 5; c.churnFrac = 0.2; c.ingestBuffers = 4 }, ""},
		{"profiles mode", func(c *simConfig) { c.profiles = true }, ""},
		{"profiles with cell", func(c *simConfig) { c.profiles = true; c.cell = true; c.reps = 1; c.ticks = 2 },
			"-profiles and -cell are mutually exclusive"},
		{"profiles with load", func(c *simConfig) { c.profiles = true; c.load = 100 },
			"-profiles cannot be combined"},
		{"profiles with churn", func(c *simConfig) { c.profiles = true; c.churn = 5 },
			"-profiles cannot be combined"},
		{"profiles with faults", func(c *simConfig) { c.profiles = true; c.faults = 10 },
			"-profiles cannot be combined"},
		{"profiles with ingest-buffers", func(c *simConfig) { c.profiles = true; c.ingestBuffers = -1 },
			"-ingest-buffers must be >= 0"},
		{"cluster with failover", func(c *simConfig) { c.cluster = true; c.shards = 2; c.failoverAfter = 1e9 }, ""},
		{"negative failover-after", func(c *simConfig) { c.cluster = true; c.shards = 2; c.failoverAfter = -1 },
			"-failover-after must be >= 0"},
		{"failover-after without cluster", func(c *simConfig) { c.failoverAfter = 1e9 },
			"-failover-after requires -cluster"},
		{"kill-shard drill", func(c *simConfig) { c.cluster = true; c.shards = 2; c.killShard = 1; c.failoverAfter = 1e9 }, ""},
		{"kill-shard without cluster", func(c *simConfig) { c.killShard = 0 },
			"-kill-shard requires -cluster"},
		{"kill-shard lone shard", func(c *simConfig) { c.cluster = true; c.shards = 1; c.killShard = 0; c.failoverAfter = 1e9 },
			"-kill-shard needs -shards >= 2"},
		{"kill-shard out of range", func(c *simConfig) { c.cluster = true; c.shards = 2; c.killShard = 2; c.failoverAfter = 1e9 },
			"out of range"},
		{"kill-shard without failover", func(c *simConfig) { c.cluster = true; c.shards = 2; c.killShard = 1 },
			"-kill-shard requires -failover-after > 0"},
		{"cell bad churnfrac", func(c *simConfig) {
			c.cell = true
			c.reps = 1
			c.ticks = 2
			c.churnFrac = 0
		}, "-churnfrac must be in (0,1]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			err := c.validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}
