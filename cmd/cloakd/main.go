// Command cloakd runs the anonymizer as a TCP service speaking the
// line-delimited JSON protocol of internal/service (see PROTOCOL.md):
// devices upload proximity rankings, epochs rebuild in the background
// per the configured policy (or on explicit freeze/rotate), and cloak
// requests are answered with k-anonymity clusters from the current
// epoch. With -demo, the command also simulates a device population
// that uploads, freezes, and issues a few cloaking requests against the
// freshly started server, so the whole flow can be watched end to end.
//
// With -admin, a second HTTP listener serves the operator endpoints:
// Prometheus /metrics, JSON /healthz and /epochz, /tracez span trees
// (enable with -trace), and /debug/pprof/.
//
// With -coordinator, cloakd runs as the front of a sharded cluster
// instead of a single anonymizer: it spawns -shards in-process shards
// (or routes to externally started cloakd processes named by
// -shard-addrs), partitions users across them, and speaks the same wire
// protocol on -addr, so clients cannot tell a cluster from one server.
// See "Cluster tier" in DESIGN.md.
//
// Usage:
//
//	cloakd -addr 127.0.0.1:7464 -n 104770 -k 10
//	cloakd -addr 127.0.0.1:7464 -n 50000 -rebuild-uploads 10000
//	cloakd -addr 127.0.0.1:7464 -admin 127.0.0.1:6060 -trace 64
//	cloakd -demo -n 5000 -k 10
//	cloakd -coordinator -shards 4 -n 104770 -k 10 -admin 127.0.0.1:6060
//	cloakd -coordinator -shard-addrs 10.0.0.1:7464,10.0.0.2:7464 -n 104770
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"nonexposure/internal/admin"
	"nonexposure/internal/cluster"
	"nonexposure/internal/dataset"
	"nonexposure/internal/epoch"
	"nonexposure/internal/metrics"
	"nonexposure/internal/service"
	"nonexposure/internal/trace"
	"nonexposure/internal/wpg"
)

// config is everything main parses from flags, separated so validation
// is testable without touching the flag package or the network.
type config struct {
	addr          string
	adminAddr     string
	n             int
	k             int
	workers       int
	everyN        int
	frac          float64
	maxStale      time.Duration
	ingestBuffers int
	traceCap      int
	fullRebuild   bool
	demo          bool
	seed          int64
	coordinator   bool
	shards        int
	shardAddrs    string
	failoverAfter time.Duration
}

// validate rejects flag combinations before any socket is opened, so a
// typo fails fast with a message naming the flag instead of a confusing
// runtime error (or, worse, a silently wrong policy).
func (c config) validate() error {
	if c.n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", c.n)
	}
	if c.k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", c.k)
	}
	if c.k > c.n {
		return fmt.Errorf("-k %d exceeds the population -n %d", c.k, c.n)
	}
	if c.everyN < 0 {
		return fmt.Errorf("-rebuild-uploads must be >= 0, got %d", c.everyN)
	}
	if c.frac < 0 || c.frac > 1 {
		return fmt.Errorf("-rebuild-frac must be in [0,1], got %g", c.frac)
	}
	if c.maxStale < 0 {
		return fmt.Errorf("-max-staleness must be >= 0, got %v", c.maxStale)
	}
	if c.ingestBuffers < 0 {
		return fmt.Errorf("-ingest-buffers must be >= 0, got %d", c.ingestBuffers)
	}
	if c.traceCap < 0 {
		return fmt.Errorf("-trace must be >= 0, got %d", c.traceCap)
	}
	if c.coordinator {
		if c.demo {
			return fmt.Errorf("-coordinator and -demo are mutually exclusive")
		}
		if c.shardAddrs == "" && c.shards < 1 {
			return fmt.Errorf("-shards must be >= 1 with -coordinator, got %d", c.shards)
		}
		if c.frac != 0 || c.maxStale != 0 || c.ingestBuffers != 0 || c.fullRebuild || c.traceCap != 0 {
			return fmt.Errorf("-coordinator only routes; rebuild tuning flags (-rebuild-frac, -max-staleness, -ingest-buffers, -full-rebuild, -trace) belong on the shard processes")
		}
	} else if c.shardAddrs != "" {
		return fmt.Errorf("-shard-addrs requires -coordinator")
	}
	if c.failoverAfter < 0 {
		return fmt.Errorf("-failover-after must be >= 0, got %v", c.failoverAfter)
	}
	if c.failoverAfter > 0 && !c.coordinator {
		return fmt.Errorf("-failover-after requires -coordinator")
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7464", "listen address")
	flag.StringVar(&cfg.adminAddr, "admin", "", "admin HTTP address for /metrics, /healthz, /epochz, /tracez, /debug/pprof (empty = disabled)")
	flag.IntVar(&cfg.n, "n", 104770, "population size the server accepts")
	flag.IntVar(&cfg.k, "k", 10, "anonymity level")
	flag.IntVar(&cfg.workers, "workers", 0, "clustering workers per rebuild (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.everyN, "rebuild-uploads", 0, "rebuild after this many uploads (0 = disabled)")
	flag.Float64Var(&cfg.frac, "rebuild-frac", 0, "rebuild once this fraction of users changed (0 = disabled)")
	flag.DurationVar(&cfg.maxStale, "max-staleness", 0, "rebuild when uploads have waited this long without another trigger (0 = disabled)")
	flag.IntVar(&cfg.ingestBuffers, "ingest-buffers", 0, "buffered upload ingestion with this many shards (0 = direct; try the upload worker count)")
	flag.IntVar(&cfg.traceCap, "trace", 0, "record span trees for the most recent N requests/builds, served at /tracez (0 = off)")
	flag.BoolVar(&cfg.fullRebuild, "full-rebuild", false, "rebuild every epoch from scratch instead of the incremental sharded path")
	flag.BoolVar(&cfg.demo, "demo", false, "run a self-contained demo population against the server and exit")
	flag.Int64Var(&cfg.seed, "seed", 42, "demo dataset seed")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "run as a cluster coordinator routing to shards instead of a single anonymizer")
	flag.IntVar(&cfg.shards, "shards", 2, "in-process shard count with -coordinator (ignored when -shard-addrs is given)")
	flag.StringVar(&cfg.shardAddrs, "shard-addrs", "", "comma-separated addresses of externally started cloakd shards to route to (with -coordinator)")
	flag.DurationVar(&cfg.failoverAfter, "failover-after", 0, "declare a failing shard dead after this long and re-home its users onto survivors at the next rotation (0 = fail-over disabled; with -coordinator)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cloakd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.coordinator {
		return runCoordinator(cfg)
	}
	policy := epoch.Policy{EveryUploads: cfg.everyN, ChangedFrac: cfg.frac, MaxStaleness: cfg.maxStale}
	em := metrics.NewEpochMetrics()
	opts := []service.Option{
		service.WithNumUsers(cfg.n),
		service.WithK(cfg.k),
		service.WithWorkers(cfg.workers),
		service.WithEpochOptions(
			epoch.WithPolicy(policy),
			epoch.WithIncremental(!cfg.fullRebuild),
			epoch.WithIngestBuffers(cfg.ingestBuffers),
		),
		service.WithMetrics(em),
	}
	if cfg.traceCap > 0 {
		opts = append(opts, service.WithTraceRecorder(trace.NewRecorder(cfg.traceCap)))
	}
	srv, err := service.New(opts...)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	bound, err := srv.Listen(ctx, cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("cloakd: anonymizer listening on %s (population %d, k=%d, rebuild policy %s)\n",
		bound, cfg.n, cfg.k, policy)

	var adminSrv *http.Server
	if cfg.adminAddr != "" {
		l, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("admin listen: %w", err)
		}
		adminSrv = &http.Server{Handler: admin.New(srv)}
		go func() {
			if err := adminSrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "cloakd: admin server:", err)
			}
		}()
		fmt.Printf("cloakd: admin listening on %s\n", l.Addr())
	}

	report := func() {
		if adminSrv != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			adminSrv.Shutdown(sctx) //nolint:errcheck // best effort on the way out
			cancel()
		}
		fmt.Printf("cloakd: final request metrics: %s\n", srv.Metrics().Snapshot())
		fmt.Printf("cloakd: final epoch metrics: %s\n", em.Snapshot())
	}
	if !cfg.demo {
		// Serve until interrupted.
		<-ctx.Done()
		fmt.Println("cloakd: shutting down")
		err := srv.Close()
		report()
		return err
	}
	defer func() {
		srv.Close()
		report()
	}()
	return runDemo(bound.String(), cfg.n, cfg.k, cfg.seed)
}

// runCoordinator is the -coordinator serving path: spawn (or connect
// to) the shards, front them with a routing coordinator speaking the
// standard wire protocol, and serve until interrupted. The admin
// listener exposes the cloakd_cluster_* series instead of the
// single-process pipeline metrics — per-shard pipeline metrics live on
// the shards' own admin endpoints.
func runCoordinator(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		addrs  []string
		shards []*cluster.Shard
		err    error
	)
	if cfg.shardAddrs != "" {
		for _, a := range strings.Split(cfg.shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	} else {
		shards, err = cluster.SpawnInProcess(ctx, cfg.shards, cluster.ShardConfig{
			NumUsers: cfg.n, K: cfg.k, Workers: cfg.workers, Admin: cfg.adminAddr != "",
		})
		if err != nil {
			return err
		}
		defer cluster.CloseShards(shards) //nolint:errcheck // also closed explicitly below
		addrs = cluster.Addrs(shards)
		for i, s := range shards {
			if s.AdminAddr != "" {
				fmt.Printf("cloakd: shard %d on %s (admin %s)\n", i, s.Addr, s.AdminAddr)
			} else {
				fmt.Printf("cloakd: shard %d on %s\n", i, s.Addr)
			}
		}
	}

	cm := metrics.NewClusterMetrics()
	opts := []cluster.Option{
		cluster.WithNumUsers(cfg.n),
		cluster.WithK(cfg.k),
		cluster.WithShardAddrs(addrs...),
		cluster.WithClusterMetrics(cm),
	}
	if cfg.everyN > 0 {
		opts = append(opts, cluster.WithEveryUploads(cfg.everyN))
	}
	if cfg.failoverAfter > 0 {
		opts = append(opts, cluster.WithFailover(cluster.Failover{DeadAfter: cfg.failoverAfter}))
	}
	coord, err := cluster.New(opts...)
	if err != nil {
		return err
	}
	bound, err := coord.Listen(ctx, cfg.addr)
	if err != nil {
		coord.Close()
		return err
	}
	fmt.Printf("cloakd: coordinator listening on %s (%d shards, population %d, k=%d)\n",
		bound, coord.Shards(), cfg.n, cfg.k)

	var adminSrv *http.Server
	if cfg.adminAddr != "" {
		l, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			coord.Close()
			return fmt.Errorf("admin listen: %w", err)
		}
		adminSrv = &http.Server{Handler: admin.NewCluster(coord)}
		go func() {
			if err := adminSrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "cloakd: admin server:", err)
			}
		}()
		fmt.Printf("cloakd: admin listening on %s\n", l.Addr())
	}

	<-ctx.Done()
	fmt.Println("cloakd: shutting down")
	if adminSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		adminSrv.Shutdown(sctx) //nolint:errcheck // best effort on the way out
		cancel()
	}
	closeErr := coord.Close()
	if err := cluster.CloseShards(shards); err != nil && closeErr == nil {
		closeErr = err
	}
	fmt.Printf("cloakd: final request metrics: %s\n", coord.Metrics().Snapshot())
	fmt.Printf("cloakd: final cluster metrics: %s\n", cm.Snapshot())
	return closeErr
}

// runDemo simulates the device side: measure proximity, upload, freeze,
// cloak.
func runDemo(addr string, n, k int, seed int64) error {
	fmt.Printf("demo: generating %d devices and measuring proximity\n", n)
	pts := dataset.CaliforniaLike(n, seed)
	delta := 2e-3
	if n != dataset.CaliforniaPOISize {
		delta *= math.Sqrt(float64(dataset.CaliforniaPOISize) / float64(n))
	}
	g := wpg.Build(pts, wpg.BuildParams{Delta: delta, MaxPeers: 10})
	fmt.Printf("demo: proximity graph has %d mutual edges (avg degree %.1f)\n",
		g.NumEdges(), g.Stats().AvgDegree)

	c, err := service.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	for v := int32(0); v < int32(n); v++ {
		var peers []service.PeerRank
		for _, e := range g.Neighbors(v) {
			peers = append(peers, service.PeerRank{Peer: e.To, Rank: e.W})
		}
		if err := c.Upload(v, peers); err != nil {
			return fmt.Errorf("upload %d: %w", v, err)
		}
	}
	edges, err := c.Freeze()
	if err != nil {
		return err
	}
	fmt.Printf("demo: server built epoch 1 with %d edges\n", edges)

	for _, host := range []int32{0, 7, int32(n / 2)} {
		cp, err := c.CloakV1(host)
		if err != nil {
			fmt.Printf("demo: host %d: %v\n", host, err)
			continue
		}
		fmt.Printf("demo: host %d clustered with %d users (request cost %d, epoch %d)\n",
			host, len(cp.Cluster), cp.Cost, cp.Epoch)
	}
	stats, err := c.StatsV1()
	if err != nil {
		return err
	}
	fmt.Printf("demo: server now holds %d clusters for %d users (epoch %d)\n",
		stats.Clusters, stats.Users, stats.Epoch)
	fmt.Printf("demo: server handled %d requests (%d errors, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs)\n",
		stats.Requests, stats.ReqErrors, stats.LatP50us, stats.LatP95us, stats.LatP99us)
	return nil
}
