// Command cloakd runs the anonymizer as a TCP service speaking the
// line-delimited JSON protocol of internal/service (see PROTOCOL.md):
// devices upload proximity rankings, epochs rebuild in the background
// per the configured policy (or on explicit freeze/rotate), and cloak
// requests are answered with k-anonymity clusters from the current
// epoch. With -demo, the command also simulates a device population
// that uploads, freezes, and issues a few cloaking requests against the
// freshly started server, so the whole flow can be watched end to end.
//
// Usage:
//
//	cloakd -addr 127.0.0.1:7464 -n 104770 -k 10
//	cloakd -addr 127.0.0.1:7464 -n 50000 -rebuild-uploads 10000
//	cloakd -demo -n 5000 -k 10
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"nonexposure/internal/dataset"
	"nonexposure/internal/epoch"
	"nonexposure/internal/metrics"
	"nonexposure/internal/service"
	"nonexposure/internal/wpg"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7464", "listen address")
		n       = flag.Int("n", 104770, "population size the server accepts")
		k       = flag.Int("k", 10, "anonymity level")
		workers = flag.Int("workers", 0, "clustering workers per rebuild (0 = GOMAXPROCS)")
		everyN  = flag.Int("rebuild-uploads", 0, "rebuild after this many uploads (0 = disabled)")
		frac    = flag.Float64("rebuild-frac", 0, "rebuild once this fraction of users changed (0 = disabled)")
		demo    = flag.Bool("demo", false, "run a self-contained demo population against the server and exit")
		seed    = flag.Int64("seed", 42, "demo dataset seed")
	)
	flag.Parse()
	policy := epoch.Policy{EveryUploads: *everyN, ChangedFrac: *frac}
	if err := run(*addr, *n, *k, *workers, policy, *demo, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cloakd:", err)
		os.Exit(1)
	}
}

func run(addr string, n, k, workers int, policy epoch.Policy, demo bool, seed int64) error {
	em := metrics.NewEpochMetrics()
	srv, err := service.New(
		service.WithNumUsers(n),
		service.WithK(k),
		service.WithWorkers(workers),
		service.WithRebuildPolicy(policy),
		service.WithMetrics(em),
	)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	bound, err := srv.Listen(ctx, addr)
	if err != nil {
		return err
	}
	fmt.Printf("cloakd: anonymizer listening on %s (population %d, k=%d, rebuild policy %s)\n",
		bound, n, k, policy)

	report := func() {
		fmt.Printf("cloakd: final request metrics: %s\n", srv.Metrics().Snapshot())
		fmt.Printf("cloakd: final epoch metrics: %s\n", em.Snapshot())
	}
	if !demo {
		// Serve until interrupted.
		<-ctx.Done()
		fmt.Println("cloakd: shutting down")
		err := srv.Close()
		report()
		return err
	}
	defer func() {
		srv.Close()
		report()
	}()
	return runDemo(bound.String(), n, k, seed)
}

// runDemo simulates the device side: measure proximity, upload, freeze,
// cloak.
func runDemo(addr string, n, k int, seed int64) error {
	fmt.Printf("demo: generating %d devices and measuring proximity\n", n)
	pts := dataset.CaliforniaLike(n, seed)
	delta := 2e-3
	if n != dataset.CaliforniaPOISize {
		delta *= math.Sqrt(float64(dataset.CaliforniaPOISize) / float64(n))
	}
	g := wpg.Build(pts, wpg.BuildParams{Delta: delta, MaxPeers: 10})
	fmt.Printf("demo: proximity graph has %d mutual edges (avg degree %.1f)\n",
		g.NumEdges(), g.Stats().AvgDegree)

	c, err := service.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	for v := int32(0); v < int32(n); v++ {
		var peers []service.PeerRank
		for _, e := range g.Neighbors(v) {
			peers = append(peers, service.PeerRank{Peer: e.To, Rank: e.W})
		}
		if err := c.Upload(v, peers); err != nil {
			return fmt.Errorf("upload %d: %w", v, err)
		}
	}
	edges, err := c.Freeze()
	if err != nil {
		return err
	}
	fmt.Printf("demo: server built epoch 1 with %d edges\n", edges)

	for _, host := range []int32{0, 7, int32(n / 2)} {
		cp, err := c.CloakV1(host)
		if err != nil {
			fmt.Printf("demo: host %d: %v\n", host, err)
			continue
		}
		fmt.Printf("demo: host %d clustered with %d users (request cost %d, epoch %d)\n",
			host, len(cp.Cluster), cp.Cost, cp.Epoch)
	}
	stats, err := c.StatsV1()
	if err != nil {
		return err
	}
	fmt.Printf("demo: server now holds %d clusters for %d users (epoch %d)\n",
		stats.Clusters, stats.Users, stats.Epoch)
	fmt.Printf("demo: server handled %d requests (%d errors, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs)\n",
		stats.Requests, stats.ReqErrors, stats.LatP50us, stats.LatP95us, stats.LatP99us)
	return nil
}
