// Command cloakd runs the anonymizer as a TCP service speaking the
// line-delimited JSON protocol of internal/service: devices upload
// proximity rankings, then cloak requests are answered with k-anonymity
// clusters. With -demo, the command also simulates a device population
// that uploads, freezes, and issues a few cloaking requests against the
// freshly started server, so the whole flow can be watched end to end.
//
// Usage:
//
//	cloakd -addr 127.0.0.1:7464 -n 104770 -k 10
//	cloakd -demo -n 5000 -k 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"nonexposure/internal/dataset"
	"nonexposure/internal/service"
	"nonexposure/internal/wpg"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7464", "listen address")
		n    = flag.Int("n", 104770, "population size the server accepts")
		k    = flag.Int("k", 10, "anonymity level")
		demo = flag.Bool("demo", false, "run a self-contained demo population against the server and exit")
		seed = flag.Int64("seed", 42, "demo dataset seed")
	)
	flag.Parse()
	if err := run(*addr, *n, *k, *demo, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cloakd:", err)
		os.Exit(1)
	}
}

func run(addr string, n, k int, demo bool, seed int64) error {
	srv, err := service.NewServer(n, k)
	if err != nil {
		return err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("cloakd: anonymizer listening on %s (population %d, k=%d)\n", bound, n, k)

	if !demo {
		// Serve until interrupted.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Println("cloakd: shutting down")
		err := srv.Close()
		fmt.Printf("cloakd: final request metrics: %s\n", srv.Metrics().Snapshot())
		return err
	}
	defer func() {
		srv.Close()
		fmt.Printf("cloakd: final request metrics: %s\n", srv.Metrics().Snapshot())
	}()
	return runDemo(bound.String(), n, k, seed)
}

// runDemo simulates the device side: measure proximity, upload, freeze,
// cloak.
func runDemo(addr string, n, k int, seed int64) error {
	fmt.Printf("demo: generating %d devices and measuring proximity\n", n)
	pts := dataset.CaliforniaLike(n, seed)
	delta := 2e-3
	if n != dataset.CaliforniaPOISize {
		delta *= math.Sqrt(float64(dataset.CaliforniaPOISize) / float64(n))
	}
	g := wpg.Build(pts, wpg.BuildParams{Delta: delta, MaxPeers: 10})
	fmt.Printf("demo: proximity graph has %d mutual edges (avg degree %.1f)\n",
		g.NumEdges(), g.Stats().AvgDegree)

	c, err := service.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	for v := int32(0); v < int32(n); v++ {
		var peers []service.PeerRank
		for _, e := range g.Neighbors(v) {
			peers = append(peers, service.PeerRank{Peer: e.To, Rank: e.W})
		}
		if err := c.Upload(v, peers); err != nil {
			return fmt.Errorf("upload %d: %w", v, err)
		}
	}
	edges, err := c.Freeze()
	if err != nil {
		return err
	}
	fmt.Printf("demo: server froze the graph with %d edges\n", edges)

	for _, host := range []int32{0, 7, int32(n / 2)} {
		cluster, cost, err := c.Cloak(host)
		if err != nil {
			fmt.Printf("demo: host %d: %v\n", host, err)
			continue
		}
		fmt.Printf("demo: host %d clustered with %d users (request cost %d)\n",
			host, len(cluster), cost)
	}
	stats, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("demo: server now holds %d clusters for %d users\n", stats.Clusters, stats.Users)
	fmt.Printf("demo: server handled %d requests (%d errors, p50 %.0fµs, p95 %.0fµs, p99 %.0fµs)\n",
		stats.Requests, stats.ReqErrors, stats.LatP50us, stats.LatP95us, stats.LatP99us)
	return nil
}
