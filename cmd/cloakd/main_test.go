package main

import (
	"strings"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	valid := config{addr: ":0", n: 100, k: 10}
	tests := []struct {
		name    string
		mutate  func(*config)
		wantErr string // "" = valid
	}{
		{"defaults", func(c *config) {}, ""},
		{"admin and trace on", func(c *config) { c.adminAddr = "127.0.0.1:0"; c.traceCap = 64 }, ""},
		{"zero population", func(c *config) { c.n = 0 }, "-n must be >= 1"},
		{"negative population", func(c *config) { c.n = -5 }, "-n must be >= 1"},
		{"zero k", func(c *config) { c.k = 0 }, "-k must be >= 1"},
		{"k beyond population", func(c *config) { c.k = 101 }, "exceeds the population"},
		{"negative rebuild-uploads", func(c *config) { c.everyN = -1 }, "-rebuild-uploads must be >= 0"},
		{"negative rebuild-frac", func(c *config) { c.frac = -0.1 }, "-rebuild-frac must be in [0,1]"},
		{"rebuild-frac above one", func(c *config) { c.frac = 1.5 }, "-rebuild-frac must be in [0,1]"},
		{"rebuild-frac at one", func(c *config) { c.frac = 1 }, ""},
		{"negative trace", func(c *config) { c.traceCap = -1 }, "-trace must be >= 0"},
		{"negative max-staleness", func(c *config) { c.maxStale = -time.Second }, "-max-staleness must be >= 0"},
		{"max-staleness on", func(c *config) { c.maxStale = 30 * time.Second }, ""},
		{"negative ingest-buffers", func(c *config) { c.ingestBuffers = -1 }, "-ingest-buffers must be >= 0"},
		{"ingest-buffers on", func(c *config) { c.ingestBuffers = 8 }, ""},
		{"coordinator with failover", func(c *config) { c.coordinator = true; c.shards = 2; c.failoverAfter = time.Second }, ""},
		{"negative failover-after", func(c *config) { c.coordinator = true; c.shards = 2; c.failoverAfter = -time.Second },
			"-failover-after must be >= 0"},
		{"failover-after without coordinator", func(c *config) { c.failoverAfter = time.Second },
			"-failover-after requires -coordinator"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			err := c.validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

// TestRunRejectsBadFlagsBeforeListening pins that validation fires
// before any socket is opened: an invalid config must not leave a
// listener behind (run returns the validation error immediately).
func TestRunRejectsBadFlagsBeforeListening(t *testing.T) {
	err := run(config{addr: "127.0.0.1:0", n: 10, k: 0})
	if err == nil || !strings.Contains(err.Error(), "-k must be >= 1") {
		t.Fatalf("run() = %v, want k validation error", err)
	}
}
