// Command wpgstat builds a weighted proximity graph over a synthetic
// population and prints its topology statistics: the numbers behind the
// paper's Fig. 9 degree sweep.
//
// Usage:
//
//	wpgstat -n 104770 -delta 0.002 -m 4,8,16,32,64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nonexposure/internal/dataset"
	"nonexposure/internal/metrics"
	"nonexposure/internal/wpg"
)

func main() {
	var (
		n     = flag.Int("n", 104770, "population size")
		delta = flag.Float64("delta", 2e-3, "radio range")
		ms    = flag.String("m", "4,8,10,16,32,64", "comma-separated peer caps to sweep")
		seed  = flag.Int64("seed", 42, "random seed")
		ds    = flag.String("dataset", "california-like", "dataset: california-like|uniform|roadlike|grid")
	)
	flag.Parse()
	if err := run(*n, *delta, *ms, *seed, *ds); err != nil {
		fmt.Fprintln(os.Stderr, "wpgstat:", err)
		os.Exit(1)
	}
}

func run(n int, delta float64, ms string, seed int64, ds string) error {
	var pts dataset.Dataset
	switch ds {
	case "california-like":
		pts = dataset.CaliforniaLike(n, seed)
	case "uniform":
		pts = dataset.Uniform(n, seed)
	case "roadlike":
		pts = dataset.RoadLike(n, 40, 0.002, seed)
	case "grid":
		pts = dataset.GridJitter(n, 0.001, seed)
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}

	table := metrics.NewTable(
		fmt.Sprintf("WPG topology: n=%d delta=%g dataset=%s", n, delta, ds),
		"M", "avg degree", "edges", "max degree", "isolated", "max weight")
	for _, field := range strings.Split(ms, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad -m entry %q: %w", field, err)
		}
		g := wpg.Build(pts, wpg.BuildParams{Delta: delta, MaxPeers: m})
		st := g.Stats()
		table.AddRow(m, st.AvgDegree, st.EdgesCount, st.MaxDegree, st.IsolatedVtxs, int(st.MaxWeight))
	}
	return table.Fprint(os.Stdout)
}
