// Command experiments regenerates every table and figure of the paper's
// evaluation (Section VI).
//
// Usage:
//
//	experiments [flags] [table1|fig9|fig10|fig11|fig12|fig13|baselines|mobility|all]
//
// By default it runs everything at a laptop-friendly 20% scale (the
// density-preserving scaling of internal/experiment); pass -scale 1 to
// run the paper's full 104,770-user configuration. With -csvdir set, each
// table is additionally written as a CSV file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nonexposure/internal/experiment"
	"nonexposure/internal/metrics"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.2, "population scale factor in (0,1]; 1 = paper scale")
		seed    = flag.Int64("seed", 42, "random seed")
		dataset = flag.String("dataset", "california-like", "dataset: california-like|uniform|roadlike|grid")
		csvdir  = flag.String("csvdir", "", "directory to also write tables as CSV (optional)")
	)
	flag.Parse()

	p := experiment.DefaultParams()
	p.Seed = *seed
	p.Dataset = *dataset
	if *scale != 1 {
		p = p.Scaled(*scale)
	}

	which := "all"
	if flag.NArg() > 0 {
		which = strings.ToLower(flag.Arg(0))
	}

	if err := run(p, which, *csvdir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(p experiment.Params, which, csvdir string) error {
	emit := func(tables ...*metrics.Table) error {
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
			if csvdir != "" {
				if err := writeCSV(csvdir, t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	want := func(name string) bool { return which == "all" || which == name }

	matched := false
	if want("table1") {
		matched = true
		if err := emit(experiment.Table1(p)); err != nil {
			return err
		}
	}
	if want("fig9") {
		matched = true
		a, b, err := experiment.RunDegreeSweep(p, []int{4, 8, 16, 32, 64})
		if err != nil {
			return fmt.Errorf("fig9: %w", err)
		}
		if err := emit(a, b); err != nil {
			return err
		}
	}
	if want("fig10") {
		matched = true
		t, err := experiment.RunPOISizeSweep(p, []float64{0, 1, 2, 5, 10, 15, 20})
		if err != nil {
			return fmt.Errorf("fig10: %w", err)
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("fig11") {
		matched = true
		a, b, err := experiment.RunKSweep(p, []int{5, 10, 20, 30, 40, 50})
		if err != nil {
			return fmt.Errorf("fig11: %w", err)
		}
		if err := emit(a, b); err != nil {
			return err
		}
	}
	if want("fig12") {
		matched = true
		ss := []int{1000, 2000, 4000, 8000}
		for i := range ss {
			ss[i] = int(float64(ss[i]) * float64(p.NumUsers) / 104770.0)
			if ss[i] < 1 {
				ss[i] = 1
			}
		}
		a, b, err := experiment.RunRequestSweep(p, ss)
		if err != nil {
			return fmt.Errorf("fig12: %w", err)
		}
		if err := emit(a, b); err != nil {
			return err
		}
	}
	if want("fig13") {
		matched = true
		a, b, c, d, err := experiment.RunBoundingSweep(p, []int{5, 10, 20, 30, 40, 50})
		if err != nil {
			return fmt.Errorf("fig13: %w", err)
		}
		if err := emit(a, b, c, d); err != nil {
			return err
		}
	}
	if want("baselines") {
		matched = true
		t, err := experiment.RunExposureComparison(p, []int{5, 10, 20, 50})
		if err != nil {
			return fmt.Errorf("baselines: %w", err)
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("mobility") {
		matched = true
		t, err := experiment.RunMobilitySweep(p, 6, 5)
		if err != nil {
			return fmt.Errorf("mobility: %w", err)
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want table1|fig9|fig10|fig11|fig12|fig13|baselines|mobility|all)", which)
	}
	return nil
}

func writeCSV(dir string, t *metrics.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, t.Title)
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.CSV(f); err != nil {
		return err
	}
	return f.Close()
}
