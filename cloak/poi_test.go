package cloak

import (
	"math/rand"
	"testing"
)

func TestPOIDatabaseRangeQuery(t *testing.T) {
	pois := []Point{{0.1, 0.1}, {0.5, 0.5}, {0.52, 0.48}, {0.9, 0.9}}
	db, err := NewPOIDatabase(pois, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Errorf("Len = %d", db.Len())
	}
	ids, cost := db.RangeQuery(Region{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6})
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if cost != 2000 {
		t.Errorf("cost = %v, want 2000", cost)
	}
	if p := db.POI(ids[0]); !(Region{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}).Contains(p) {
		t.Errorf("returned POI %v outside the region", p)
	}
}

func TestPOIDatabaseNearestFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pois := make([]Point, 500)
	for i := range pois {
		pois[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	db, err := NewPOIDatabase(pois, 1000)
	if err != nil {
		t.Fatal(err)
	}
	me := Point{X: 0.42, Y: 0.58}
	region := Region{MinX: 0.4, MinY: 0.55, MaxX: 0.45, MaxY: 0.62}
	cands, cost := db.NearestCandidates(region, 3)
	if len(cands) < 3 || cost <= 0 {
		t.Fatalf("candidates = %d, cost = %v", len(cands), cost)
	}
	got := db.ResolveNearest(cands, me, 3)
	if len(got) != 3 {
		t.Fatalf("resolved = %v", got)
	}
	// Cross-check against a brute-force 3NN over all POIs.
	type cand struct {
		d  float64
		id int32
	}
	var all []cand
	for i, p := range pois {
		dx, dy := p.X-me.X, p.Y-me.Y
		all = append(all, cand{dx*dx + dy*dy, int32(i)})
	}
	for i := 0; i < 3; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[best].d || (all[j].d == all[best].d && all[j].id < all[best].id) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		if got[i] != all[i].id {
			t.Fatalf("resolved[%d] = %d, want %d", i, got[i], all[i].id)
		}
	}
}

func TestPOIDatabaseValidation(t *testing.T) {
	if _, err := NewPOIDatabase(nil, -1); err == nil {
		t.Error("negative cost should error")
	}
}
