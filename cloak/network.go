package cloak

import (
	"fmt"

	"nonexposure/internal/core"
	"nonexposure/internal/p2p"
)

// NetworkConfig enables running the distributed protocols over a
// simulated peer-to-peer message network (one goroutine per device)
// instead of in-process calls. Results are identical on a lossless
// network; with loss injection, requests are retried and the run degrades
// gracefully — the paper's Section VII robustness concern.
type NetworkConfig struct {
	// LossRate is the probability that any single transmission is lost
	// (0 disables injection; must be < 1).
	LossRate float64
	// MaxRetries bounds the retries per request after losses.
	MaxRetries int
	// Seed makes loss injection deterministic.
	Seed int64
}

// NetworkSystem is a System whose phase-1 and phase-2 protocols run over
// simulated peer-to-peer messages. Create with NewNetworkSystem and Close
// when done (it owns one goroutine per user).
type NetworkSystem struct {
	*System
	net *p2p.Network
}

// NewNetworkSystem builds a message-passing deployment. Only
// ModeDistributed is meaningful here (an anonymizer would not use p2p
// messages), so cfg.Mode is forced to ModeDistributed.
func NewNetworkSystem(users []Point, cfg Config, ncfg NetworkConfig) (*NetworkSystem, error) {
	cfg.Mode = ModeDistributed
	sys, err := NewSystem(users, cfg)
	if err != nil {
		return nil, err
	}
	net, err := p2p.NewNetwork(sys.g, sys.pts, p2p.Config{
		LossRate:   ncfg.LossRate,
		MaxRetries: ncfg.MaxRetries,
		Seed:       ncfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("cloak: %w", err)
	}
	return &NetworkSystem{System: sys, net: net}, nil
}

// Close stops the per-device goroutines.
func (ns *NetworkSystem) Close() { ns.net.Close() }

// MessagesSent returns the total transmissions put on the simulated wire
// (including retries and lost messages).
func (ns *NetworkSystem) MessagesSent() uint64 { return ns.net.Sent() }

// MessagesLost returns how many transmissions the loss injection dropped.
func (ns *NetworkSystem) MessagesLost() uint64 { return ns.net.Lost() }

// Cloak runs the two-phase protocol for host entirely over the message
// network.
func (ns *NetworkSystem) Cloak(host int) (Result, error) {
	if host < 0 || host >= len(ns.pts) {
		return Result{}, fmt.Errorf("cloak: no such user %d", host)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()

	var res Result
	cluster, stats, err := ns.net.DistributedTConn(int32(host), ns.cfg.K, ns.reg)
	if err != nil {
		return Result{}, translateErr(err)
	}
	res.ClusterSize = cluster.Size()
	res.ClusterComm = stats.Involved
	res.CachedCluster = stats.Cached

	if entry, ok := ns.regions[cluster.ID]; ok {
		res.Region = entry.region
		res.BoundRounds = entry.rounds
		res.CachedRegion = true
		return res, nil
	}

	var pol core.IncrementPolicy
	switch ns.cfg.Bound {
	case BoundLinear:
		pol = core.LinearIncrement{Step: ns.cfg.LinearStep}
	case BoundExponential:
		pol = core.ExpIncrement{Init: ns.cfg.ExpInit}
	default: // secure is the network default; optimal would defeat the point
		pol = core.NewSecureIncrementForCluster(ns.cfg.Cb, ns.cfg.Cr, cluster.Size())
	}
	scale := core.DefaultRectScale(cluster.Size(), len(ns.pts))
	bound, err := ns.net.BoundRect(int32(host), cluster.Members, scale, pol, ns.cfg.Cb)
	if err != nil {
		// Transport degradation: the region may be looser but remains
		// valid for reachable members; surface the error.
		return Result{}, fmt.Errorf("cloak: bounding over network: %w", err)
	}
	region := ns.cfg.applyGranularity(Region{
		MinX: bound.Rect.Min.X, MinY: bound.Rect.Min.Y,
		MaxX: bound.Rect.Max.X, MaxY: bound.Rect.Max.Y,
	})
	ns.regions[cluster.ID] = regionEntry{region: region, rounds: bound.Rounds}
	res.Region = region
	res.BoundMessages = bound.Messages
	res.BoundRounds = bound.Rounds
	return res, nil
}
