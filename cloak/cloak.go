// Package cloak is the public API of the non-exposure location-anonymity
// library (Hu & Xu, "Non-Exposure Location Anonymity", ICDE 2009).
//
// It cloaks a user's location into a rectangle that (a) contains at least
// K users and (b) was computed without any party — peer, anonymizer, or
// server — ever learning an accurate user location. Cloaking runs in two
// phases:
//
//  1. Proximity minimum k-clustering over the weighted proximity graph
//     (WPG) built from relative signal-strength ranks: the host is grouped
//     with at least K-1 peers, preserving reciprocity and
//     cluster-isolation.
//  2. Secure bounding: the cluster's bounding rectangle is found by a
//     progressive hypothesis–verification protocol in which every member
//     only ever answers "is my coordinate below this bound?".
//
// A System simulates a full deployment: it builds the WPG from the true
// device positions (standing in for physical RSS measurements), then runs
// the protocols exactly as deployed devices would — the clustering and
// bounding logic never reads positions directly.
//
// The zero-dependency simulation substrate (datasets, RSS models, message
// passing, LBS query processing, experiment harness) lives under
// internal/; see DESIGN.md for the map.
package cloak

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nonexposure/internal/anonymizer"
	"nonexposure/internal/core"
	"nonexposure/internal/geo"
	"nonexposure/internal/rss"
	"nonexposure/internal/trace"
	"nonexposure/internal/wpg"
)

// Point is a user location in the (normalized) unit square.
type Point struct {
	X, Y float64
}

// Region is a cloaked axis-aligned rectangle.
type Region struct {
	MinX, MinY, MaxX, MaxY float64
}

// Area returns the region's area.
func (r Region) Area() float64 {
	w := r.MaxX - r.MinX
	h := r.MaxY - r.MinY
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// Contains reports whether p lies inside the region (borders included).
func (r Region) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Mode selects where phase-1 clustering runs.
type Mode int

// Clustering modes.
const (
	// ModeDistributed runs Algorithm 2 at the host via peer-to-peer
	// information gathering (the paper's headline configuration).
	ModeDistributed Mode = iota
	// ModeCentralized delegates clustering to an anonymizer that holds
	// all users' proximity lists (never their coordinates) and clusters
	// the whole graph once.
	ModeCentralized
)

// BoundAlgorithm selects the phase-2 bounding policy.
type BoundAlgorithm int

// Bounding algorithms (Section VI-D).
const (
	// BoundSecure uses the paper's cost-optimal N-bounding increments.
	BoundSecure BoundAlgorithm = iota
	// BoundLinear grows the bound by a fixed step each round.
	BoundLinear
	// BoundExponential doubles the bound each round.
	BoundExponential
	// BoundOptimal reveals exact coordinates (tightest region, no
	// privacy) — the benchmark, not a deployment choice.
	BoundOptimal
)

// ErrNotEnoughUsers is returned when the host cannot gather K users.
var ErrNotEnoughUsers = errors.New("cloak: not enough reachable users for k-anonymity")

// Config tunes a System. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// K is the anonymity level: every cloaked region covers >= K users.
	K int
	// Delta is the radio range: peers farther apart cannot measure each
	// other.
	Delta float64
	// MaxPeers caps each device's peer list (the paper's M).
	MaxPeers int
	// Mode selects distributed or centralized clustering.
	Mode Mode
	// Bound selects the phase-2 algorithm.
	Bound BoundAlgorithm
	// Cb is the cost of one bound-verification message; Cr the relative
	// cost of one POI of request payload. They parameterize the secure
	// policy's optimal increments.
	Cb, Cr float64
	// LinearStep and ExpInit tune the baseline policies (normalized to
	// the cluster extent estimate).
	LinearStep, ExpInit float64
	// MinArea, when positive, additionally enforces the granularity
	// metric (Casper): a cloaked region smaller than MinArea is inflated
	// around its center (clamped to the unit square) until it satisfies
	// the threshold. Zero disables it.
	MinArea float64
}

// DefaultConfig returns the paper's Table I settings.
func DefaultConfig() Config {
	return Config{
		K:          10,
		Delta:      2e-3,
		MaxPeers:   10,
		Mode:       ModeDistributed,
		Bound:      BoundSecure,
		Cb:         1,
		Cr:         1000,
		LinearStep: 0.05,
		ExpInit:    0.25,
	}
}

// Result reports one cloaking request.
type Result struct {
	// Region is the cloaked region to attach to service requests. It
	// contains the host and at least K-1 other users.
	Region Region
	// ClusterSize is the number of users sharing this region.
	ClusterSize int
	// ClusterComm is the phase-1 communication cost in messages (0 when
	// the cluster was cached from an earlier request).
	ClusterComm int
	// BoundMessages is the phase-2 verification cost (0 when the region
	// was cached).
	BoundMessages float64
	// BoundRounds is the number of hypothesis–verification iterations.
	BoundRounds int
	// CachedCluster and CachedRegion report which phases were skipped
	// because an earlier request already paid for them.
	CachedCluster bool
	CachedRegion  bool
}

// System is a simulated deployment of the non-exposure cloaking scheme
// over a fixed population of users. It is safe for concurrent use:
// cloaking requests are serialized (the paper's Section VII concurrency
// control) so clusters never overlap and no deadlock can occur.
type System struct {
	cfg Config
	pts []geo.Point
	g   *wpg.Graph

	mu      sync.Mutex
	reg     *core.Registry
	anon    *anonymizer.Server
	regions map[int32]regionEntry // cluster ID -> bounded region
}

type regionEntry struct {
	region Region
	rounds int
}

// NewSystem builds a deployment over the given user positions. Positions
// should be normalized to the unit square (see Config.Delta, which is
// expressed in those units).
func NewSystem(users []Point, cfg Config) (*System, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("cloak: K must be >= 1, got %d", cfg.K)
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("cloak: Delta must be positive, got %v", cfg.Delta)
	}
	if cfg.Cb <= 0 || cfg.Cr <= 0 {
		return nil, fmt.Errorf("cloak: Cb and Cr must be positive, got %v / %v", cfg.Cb, cfg.Cr)
	}
	if len(users) < cfg.K {
		return nil, fmt.Errorf("cloak: %d users cannot satisfy K=%d", len(users), cfg.K)
	}
	pts := make([]geo.Point, len(users))
	for i, u := range users {
		pts[i] = geo.Point{X: u.X, Y: u.Y}
	}
	g := wpg.Build(pts, wpg.BuildParams{
		Delta:    cfg.Delta,
		MaxPeers: cfg.MaxPeers,
		Model:    rss.InverseModel{},
	})
	s := &System{
		cfg:     cfg,
		pts:     pts,
		g:       g,
		reg:     core.NewRegistry(len(pts)),
		regions: make(map[int32]regionEntry),
	}
	if cfg.Mode == ModeCentralized {
		s.anon = anonymizer.NewServer(g, anonymizer.WithK(cfg.K))
		s.reg = s.anon.Registry()
	}
	return s, nil
}

// NumUsers returns the population size.
func (s *System) NumUsers() int { return len(s.pts) }

// AvgDegree returns the average vertex degree of the underlying proximity
// graph — the paper's topology-density metric.
func (s *System) AvgDegree() float64 { return s.g.Stats().AvgDegree }

// K returns the configured anonymity level.
func (s *System) K() int { return s.cfg.K }

// Cloak obtains the cloaked region for the given user, running whichever
// of the two phases is not already cached. It is the entry point a device
// calls right before issuing a location-based service request.
func (s *System) Cloak(host int) (Result, error) {
	return s.CloakCtx(context.Background(), host)
}

// CloakCtx is Cloak with a caller-supplied context. When ctx carries a
// trace span (internal/trace), the clustering and secure-bounding phases
// report as child spans of it.
func (s *System) CloakCtx(ctx context.Context, host int) (Result, error) {
	if host < 0 || host >= len(s.pts) {
		return Result{}, fmt.Errorf("cloak: no such user %d", host)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var res Result

	// Phase 1: k-clustering.
	var cluster *core.Cluster
	switch s.cfg.Mode {
	case ModeCentralized:
		c, cost, err := s.anon.Cloak(ctx, int32(host))
		if err != nil {
			return Result{}, translateErr(err)
		}
		cluster = c
		res.ClusterComm = cost
		res.CachedCluster = cost == 0
	default:
		csp := trace.FromContext(ctx).Child("core.cluster")
		c, stats, err := core.DistributedTConn(core.GraphSource{G: s.g}, int32(host), s.cfg.K, s.reg)
		csp.End()
		if err != nil {
			return Result{}, translateErr(err)
		}
		cluster = c
		res.ClusterComm = stats.Involved
		res.CachedCluster = stats.Cached
	}
	res.ClusterSize = cluster.Size()

	// Phase 2: secure bounding (cached per cluster — the region is shared
	// by every member, which is what makes the host indistinguishable).
	if entry, ok := s.regions[cluster.ID]; ok {
		res.Region = entry.region
		res.BoundRounds = entry.rounds
		res.CachedRegion = true
		return res, nil
	}
	bound, err := s.boundCtx(ctx, cluster, int32(host))
	if err != nil {
		return Result{}, err
	}
	region := s.cfg.applyGranularity(Region{
		MinX: bound.Rect.Min.X, MinY: bound.Rect.Min.Y,
		MaxX: bound.Rect.Max.X, MaxY: bound.Rect.Max.Y,
	})
	s.regions[cluster.ID] = regionEntry{region: region, rounds: bound.Rounds}
	res.Region = region
	res.BoundMessages = bound.Messages
	res.BoundRounds = bound.Rounds
	return res, nil
}

// applyGranularity inflates a region around its center until it meets the
// MinArea threshold, clamped to the unit square (inflating further along
// the unclamped axis when a border is hit).
func (c Config) applyGranularity(r Region) Region {
	if c.MinArea <= 0 || r.Area() >= c.MinArea {
		return r
	}
	for i := 0; i < 64 && r.Area() < c.MinArea; i++ {
		w := r.MaxX - r.MinX
		h := r.MaxY - r.MinY
		// Grow both axes by 30% plus an absolute floor for degenerate
		// regions.
		dx := 0.15*w + 1e-4
		dy := 0.15*h + 1e-4
		r.MinX, r.MaxX = clamp01(r.MinX-dx), clamp01(r.MaxX+dx)
		r.MinY, r.MaxY = clamp01(r.MinY-dy), clamp01(r.MaxY+dy)
		if r.MinX == 0 && r.MaxX == 1 && r.MinY == 0 && r.MaxY == 1 {
			break // cannot grow past the whole world
		}
	}
	return r
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (s *System) boundCtx(ctx context.Context, cluster *core.Cluster, host int32) (core.RectBoundResult, error) {
	if s.cfg.Bound == BoundOptimal {
		sp := trace.FromContext(ctx).Child("core.bound.optimal")
		defer sp.End()
		return core.OptimalRect(s.pts, cluster.Members, s.cfg.Cb)
	}
	var pol core.IncrementPolicy
	switch s.cfg.Bound {
	case BoundLinear:
		pol = core.LinearIncrement{Step: s.cfg.LinearStep}
	case BoundExponential:
		pol = core.ExpIncrement{Init: s.cfg.ExpInit}
	case BoundSecure:
		pol = core.NewSecureIncrementForCluster(s.cfg.Cb, s.cfg.Cr, cluster.Size())
	default:
		return core.RectBoundResult{}, fmt.Errorf("cloak: unknown bounding algorithm %d", s.cfg.Bound)
	}
	scale := core.DefaultRectScale(cluster.Size(), len(s.pts))
	return core.BoundRectCtx(ctx, s.pts, cluster.Members, s.pts[host], scale, pol, s.cfg.Cb)
}

// ClusterOf returns the ids of the users sharing host's cluster, or nil
// when host has not been cloaked yet.
func (s *System) ClusterOf(host int) []int32 {
	if host < 0 || host >= len(s.pts) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.reg.ClusterOf(int32(host))
	if !ok {
		return nil
	}
	return append([]int32(nil), c.Members...)
}

func translateErr(err error) error {
	if errors.Is(err, core.ErrInsufficientUsers) {
		return fmt.Errorf("%w: %v", ErrNotEnoughUsers, err)
	}
	return err
}
