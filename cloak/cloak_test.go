package cloak

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// testUsers places n users in a handful of dense towns so the default
// Delta yields a usable proximity graph.
func testUsers(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []Point{{0.2, 0.2}, {0.7, 0.3}, {0.4, 0.8}}
	users := make([]Point, n)
	for i := range users {
		c := centers[rng.Intn(len(centers))]
		users[i] = Point{
			X: c.X + (rng.Float64()-0.5)*0.02,
			Y: c.Y + (rng.Float64()-0.5)*0.02,
		}
	}
	return users
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 5
	cfg.Delta = 0.004
	return cfg
}

func TestRegionBasics(t *testing.T) {
	r := Region{MinX: 0.1, MinY: 0.2, MaxX: 0.4, MaxY: 0.6}
	if got, want := r.Area(), 0.12; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("Area = %v, want %v", got, want)
	}
	if !r.Contains(Point{0.2, 0.3}) || r.Contains(Point{0.5, 0.3}) {
		t.Error("Contains wrong")
	}
	inverted := Region{MinX: 1, MaxX: 0}
	if inverted.Area() != 0 {
		t.Error("inverted region should have zero area")
	}
}

func TestNewSystemValidation(t *testing.T) {
	users := testUsers(100, 1)
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"k<1", func(c *Config) { c.K = 0 }},
		{"delta<=0", func(c *Config) { c.Delta = 0 }},
		{"cb<=0", func(c *Config) { c.Cb = 0 }},
		{"cr<=0", func(c *Config) { c.Cr = -1 }},
	}
	for _, tc := range bad {
		cfg := testConfig()
		tc.mut(&cfg)
		if _, err := NewSystem(users, cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	cfg := testConfig()
	cfg.K = 101
	if _, err := NewSystem(users, cfg); err == nil {
		t.Error("K > population: expected error")
	}
}

func TestCloakBasicFlow(t *testing.T) {
	users := testUsers(300, 2)
	sys, err := NewSystem(users, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumUsers() != 300 || sys.K() != 5 {
		t.Errorf("NumUsers=%d K=%d", sys.NumUsers(), sys.K())
	}
	if sys.AvgDegree() <= 0 {
		t.Error("graph has no edges; test geometry broken")
	}

	res, err := sys.Cloak(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusterSize < 5 {
		t.Errorf("ClusterSize = %d, want >= 5", res.ClusterSize)
	}
	if !res.Region.Contains(users[0]) {
		t.Errorf("region %+v does not contain the host %+v", res.Region, users[0])
	}
	if res.CachedCluster || res.CachedRegion {
		t.Error("first request should not be cached")
	}
	if res.ClusterComm <= 0 || res.BoundMessages <= 0 {
		t.Errorf("costs: cluster=%d bound=%v", res.ClusterComm, res.BoundMessages)
	}

	// Every cluster member must be inside the region and, when cloaking
	// themselves, get the exact same region at zero cost (reciprocity).
	for _, m := range sys.ClusterOf(0) {
		if !res.Region.Contains(users[m]) {
			t.Errorf("member %d outside the shared region", m)
		}
		r2, err := sys.Cloak(int(m))
		if err != nil {
			t.Fatal(err)
		}
		if r2.Region != res.Region {
			t.Errorf("member %d got region %+v, want %+v", m, r2.Region, res.Region)
		}
		if !r2.CachedCluster || !r2.CachedRegion {
			t.Errorf("member %d should be fully cached: %+v", m, r2)
		}
		if r2.ClusterComm != 0 || r2.BoundMessages != 0 {
			t.Errorf("member %d paid again: %+v", m, r2)
		}
	}
}

func TestCloakErrors(t *testing.T) {
	users := testUsers(300, 3)
	sys, err := NewSystem(users, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Cloak(-1); err == nil {
		t.Error("negative host should error")
	}
	if _, err := sys.Cloak(300); err == nil {
		t.Error("out-of-range host should error")
	}
	if sys.ClusterOf(-1) != nil || sys.ClusterOf(5) != nil {
		t.Error("ClusterOf should be nil for invalid/uncloaked users")
	}
}

func TestCloakNotEnoughUsers(t *testing.T) {
	// Two isolated users can never reach K=5.
	users := []Point{{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}, {0.3, 0.7}, {0.7, 0.3}}
	cfg := testConfig()
	cfg.K = 5
	cfg.Delta = 0.001
	sys, err := NewSystem(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Cloak(0)
	if !errors.Is(err, ErrNotEnoughUsers) {
		t.Errorf("err = %v, want ErrNotEnoughUsers", err)
	}
}

func TestCloakAllModesAndBounds(t *testing.T) {
	for _, mode := range []Mode{ModeDistributed, ModeCentralized} {
		for _, bound := range []BoundAlgorithm{BoundSecure, BoundLinear, BoundExponential, BoundOptimal} {
			users := testUsers(300, 4)
			cfg := testConfig()
			cfg.Mode = mode
			cfg.Bound = bound
			sys, err := NewSystem(users, cfg)
			if err != nil {
				t.Fatalf("mode=%v bound=%v: %v", mode, bound, err)
			}
			res, err := sys.Cloak(7)
			if err != nil {
				t.Fatalf("mode=%v bound=%v: %v", mode, bound, err)
			}
			if !res.Region.Contains(users[7]) || res.ClusterSize < cfg.K {
				t.Errorf("mode=%v bound=%v: bad result %+v", mode, bound, res)
			}
		}
	}
}

func TestCentralizedModeAmortizes(t *testing.T) {
	users := testUsers(400, 5)
	cfg := testConfig()
	cfg.Mode = ModeCentralized
	sys, err := NewSystem(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sys.Cloak(0)
	if err != nil {
		t.Fatal(err)
	}
	if first.ClusterComm != 400 {
		t.Errorf("first centralized request cost = %d, want 400", first.ClusterComm)
	}
	second, err := sys.Cloak(200)
	if err != nil {
		t.Fatal(err)
	}
	if second.ClusterComm != 0 || !second.CachedCluster {
		t.Errorf("second centralized request: %+v", second)
	}
}

func TestCloakOptimalTighterThanProgressive(t *testing.T) {
	usersA := testUsers(300, 6)
	usersB := testUsers(300, 6)
	cfgOpt := testConfig()
	cfgOpt.Bound = BoundOptimal
	cfgExp := testConfig()
	cfgExp.Bound = BoundExponential
	sysOpt, err := NewSystem(usersA, cfgOpt)
	if err != nil {
		t.Fatal(err)
	}
	sysExp, err := NewSystem(usersB, cfgExp)
	if err != nil {
		t.Fatal(err)
	}
	rOpt, err := sysOpt.Cloak(11)
	if err != nil {
		t.Fatal(err)
	}
	rExp, err := sysExp.Cloak(11)
	if err != nil {
		t.Fatal(err)
	}
	if rOpt.Region.Area() > rExp.Region.Area()+1e-15 {
		t.Errorf("optimal area %v should not exceed exponential %v",
			rOpt.Region.Area(), rExp.Region.Area())
	}
}

func TestCloakConcurrentRequests(t *testing.T) {
	users := testUsers(500, 7)
	sys, err := NewSystem(users, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(host int) {
			defer wg.Done()
			if _, err := sys.Cloak(host * 7 % 500); err != nil && !errors.Is(err, ErrNotEnoughUsers) {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
