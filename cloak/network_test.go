package cloak

import (
	"testing"
)

func TestNetworkSystemMatchesInProcess(t *testing.T) {
	usersA := testUsers(250, 11)
	usersB := testUsers(250, 11)
	cfg := testConfig()

	inproc, err := NewSystem(usersA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nsys, err := NewNetworkSystem(usersB, cfg, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer nsys.Close()

	for _, host := range []int{3, 50, 120} {
		a, errA := inproc.Cloak(host)
		b, errB := nsys.Cloak(host)
		if (errA != nil) != (errB != nil) {
			t.Fatalf("host %d: error mismatch %v vs %v", host, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Region != b.Region {
			t.Errorf("host %d: network region %+v != in-process %+v", host, b.Region, a.Region)
		}
		if a.ClusterComm != b.ClusterComm {
			t.Errorf("host %d: cluster comm %d vs %d", host, b.ClusterComm, a.ClusterComm)
		}
	}
	if nsys.MessagesSent() == 0 {
		t.Error("network carried no messages")
	}
	if nsys.MessagesLost() != 0 {
		t.Error("lossless network lost messages")
	}
}

func TestNetworkSystemWithLoss(t *testing.T) {
	users := testUsers(250, 12)
	sys, err := NewNetworkSystem(users, testConfig(), NetworkConfig{
		LossRate:   0.2,
		MaxRetries: 30,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Cloak(9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Region.Contains(users[9]) {
		t.Errorf("region %+v missing host", res.Region)
	}
	if sys.MessagesLost() == 0 {
		t.Error("loss injection at 20% produced no losses")
	}
}

func TestNetworkSystemForcesDistributedMode(t *testing.T) {
	users := testUsers(250, 13)
	cfg := testConfig()
	cfg.Mode = ModeCentralized // should be overridden
	sys, err := NewNetworkSystem(users, cfg, NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Cloak(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Cloak(-1); err == nil {
		t.Error("invalid host should error")
	}
}
