package cloak

import (
	"fmt"

	"nonexposure/internal/geo"
	"nonexposure/internal/lbs"
)

// POIDatabase is the location-based-service side of the system: a spatial
// database that answers queries over cloaked regions instead of points,
// returning candidate supersets the client refines locally with its
// private location (the query-processing model of Casper / kRNN that the
// paper builds on).
type POIDatabase struct {
	srv  *lbs.Server
	pois []geo.Point
}

// NewPOIDatabase indexes the given POIs. costPerPOI is the communication
// cost of shipping one POI's content, relative to one protocol message
// (the paper's Cr = 1000).
func NewPOIDatabase(pois []Point, costPerPOI float64) (*POIDatabase, error) {
	pts := make([]geo.Point, len(pois))
	for i, p := range pois {
		pts[i] = geo.Point{X: p.X, Y: p.Y}
	}
	srv, err := lbs.NewServer(pts, costPerPOI)
	if err != nil {
		return nil, fmt.Errorf("cloak: %w", err)
	}
	return &POIDatabase{srv: srv, pois: pts}, nil
}

// Len returns the number of POIs.
func (db *POIDatabase) Len() int { return len(db.pois) }

// POI returns the location of POI id.
func (db *POIDatabase) POI(id int32) Point {
	p := db.pois[id]
	return Point{X: p.X, Y: p.Y}
}

func toRect(r Region) geo.Rect {
	return geo.Rect{
		Min: geo.Point{X: r.MinX, Y: r.MinY},
		Max: geo.Point{X: r.MaxX, Y: r.MaxY},
	}
}

// RangeQuery returns the ids of all POIs inside the cloaked region and
// the communication cost of shipping them.
func (db *POIDatabase) RangeQuery(r Region) (ids []int32, cost float64) {
	return db.srv.RangeQuery(toRect(r))
}

// NearestCandidates returns a candidate superset guaranteed to contain
// the k nearest POIs of *every* point inside the cloaked region, plus the
// shipping cost. The requesting user then calls ResolveNearest locally —
// the server never learns where in the region the user actually is.
func (db *POIDatabase) NearestCandidates(r Region, k int) (ids []int32, cost float64) {
	return db.srv.RangeNNQuery(toRect(r), k)
}

// ResolveNearest is the client-side refinement: given the candidate
// superset and the client's private location, return its true k nearest
// POIs.
func (db *POIDatabase) ResolveNearest(candidates []int32, me Point, k int) []int32 {
	return db.srv.FilterKNN(candidates, geo.Point{X: me.X, Y: me.Y}, k)
}
