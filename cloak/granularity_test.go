package cloak

import (
	"testing"
)

func TestGranularityInflatesSmallRegions(t *testing.T) {
	users := testUsers(300, 31)
	cfg := testConfig()
	cfg.MinArea = 0.01 // far larger than a typical cluster bbox here
	sys, err := NewSystem(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Cloak(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Region.Area() < cfg.MinArea {
		t.Errorf("area %v below granularity threshold %v", res.Region.Area(), cfg.MinArea)
	}
	if !res.Region.Contains(users[3]) {
		t.Error("inflated region must still contain the host")
	}
	// All members still inside (inflation only grows the region).
	for _, m := range sys.ClusterOf(3) {
		if !res.Region.Contains(users[m]) {
			t.Errorf("member %d fell outside the inflated region", m)
		}
	}
}

func TestGranularityNoopWhenSatisfied(t *testing.T) {
	users := testUsers(300, 32)
	base := testConfig()
	sysA, err := NewSystem(users, base)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := sysA.Cloak(3)
	if err != nil {
		t.Fatal(err)
	}

	withTiny := testConfig()
	withTiny.MinArea = resA.Region.Area() / 10
	usersB := testUsers(300, 32)
	sysB, err := NewSystem(usersB, withTiny)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sysB.Cloak(3)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Region != resB.Region {
		t.Errorf("satisfied granularity must not change the region: %+v vs %+v",
			resA.Region, resB.Region)
	}
}

func TestGranularityClampsAtWorld(t *testing.T) {
	r := Config{MinArea: 5}.applyGranularity(Region{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6})
	if r.MinX != 0 || r.MinY != 0 || r.MaxX != 1 || r.MaxY != 1 {
		t.Errorf("impossible threshold should saturate at the unit square, got %+v", r)
	}
}

func TestGranularityDegenerateRegion(t *testing.T) {
	// A zero-area (point) region must still inflate.
	r := Config{MinArea: 1e-4}.applyGranularity(Region{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5})
	if r.Area() < 1e-4 {
		t.Errorf("degenerate region not inflated: %+v (area %v)", r, r.Area())
	}
	if !r.Contains(Point{0.5, 0.5}) {
		t.Error("inflation must keep the original point inside")
	}
}
