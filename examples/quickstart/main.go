// Quickstart: cloak one user's location with 10-anonymity and verify the
// guarantees — the region contains at least K users, every cluster member
// shares the same region, and nobody ever transmitted a coordinate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nonexposure/cloak"
)

func main() {
	// A small downtown: 2,000 users in a 0.05 x 0.05 block plus some
	// scattered suburbs.
	rng := rand.New(rand.NewSource(1))
	users := make([]cloak.Point, 0, 2500)
	for i := 0; i < 2000; i++ {
		users = append(users, cloak.Point{
			X: 0.40 + rng.Float64()*0.05,
			Y: 0.40 + rng.Float64()*0.05,
		})
	}
	for i := 0; i < 500; i++ {
		users = append(users, cloak.Point{X: rng.Float64(), Y: rng.Float64()})
	}

	cfg := cloak.DefaultConfig() // K=10, secure bounding, distributed mode
	cfg.Delta = 0.01             // radio range for this density
	sys, err := cloak.NewSystem(users, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d users, average proximity degree %.1f\n",
		sys.NumUsers(), sys.AvgDegree())

	host := 17
	res, err := sys.Cloak(host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user %d cloaked into [%.4f,%.4f]x[%.4f,%.4f] (area %.2g)\n",
		host, res.Region.MinX, res.Region.MaxX, res.Region.MinY, res.Region.MaxY,
		res.Region.Area())
	fmt.Printf("k-anonymity: the region is shared by %d users\n", res.ClusterSize)
	fmt.Printf("cost: %d clustering messages + %.0f bounding messages in %d rounds\n",
		res.ClusterComm, res.BoundMessages, res.BoundRounds)

	// Reciprocity: every member of the cluster gets the identical region,
	// so an adversary cannot tell which of them issued the request.
	members := sys.ClusterOf(host)
	same := 0
	for _, m := range members {
		r, err := sys.Cloak(int(m))
		if err != nil {
			log.Fatal(err)
		}
		if r.Region == res.Region {
			same++
		}
	}
	fmt.Printf("reciprocity: %d/%d members share the exact region (all cached, zero cost)\n",
		same, len(members))
}
