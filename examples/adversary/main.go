// Adversary: what an eavesdropper actually learns. We simulate an attacker
// who intercepts a cloaked service request and tries to identify the
// requester, then contrast the non-exposure guarantee with what the
// baseline "optimal" bounding leaks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nonexposure/cloak"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	users := make([]cloak.Point, 4000)
	for i := range users {
		users[i] = cloak.Point{
			X: 0.3 + rng.Float64()*0.1,
			Y: 0.3 + rng.Float64()*0.1,
		}
	}

	cfg := cloak.DefaultConfig()
	cfg.K = 20
	cfg.Delta = 0.005
	sys, err := cloak.NewSystem(users, cfg)
	if err != nil {
		log.Fatal(err)
	}

	host := 777
	res, err := sys.Cloak(host)
	if err != nil {
		log.Fatal(err)
	}

	// The attacker sees only the region attached to the request.
	region := res.Region
	fmt.Printf("intercepted request with region [%.4f,%.4f]x[%.4f,%.4f]\n",
		region.MinX, region.MaxX, region.MinY, region.MaxY)

	// Suppose the attacker even knows every user's position (worst case,
	// e.g. a compromised operator). The candidate requesters are all users
	// inside the region:
	var inside []int
	for i, u := range users {
		if region.Contains(u) {
			inside = append(inside, i)
		}
	}
	fmt.Printf("users inside the region: %d — the requester hides among them (k=%d requested)\n",
		len(inside), cfg.K)
	if len(inside) < cfg.K {
		log.Fatalf("anonymity violated: only %d users inside", len(inside))
	}

	// Reciprocity check: all cluster members produce the SAME region, so
	// observing many requests over time still cannot separate them.
	members := sys.ClusterOf(host)
	distinct := make(map[cloak.Region]bool)
	for _, m := range members {
		r, err := sys.Cloak(int(m))
		if err != nil {
			log.Fatal(err)
		}
		distinct[r.Region] = true
	}
	fmt.Printf("reciprocity: %d cluster members emit %d distinct region(s)\n",
		len(members), len(distinct))

	// What no party ever saw: a coordinate. During phase 2, each member
	// only answered yes/no to proposed bounds. The best any protocol
	// participant can infer about a member's x-coordinate is the interval
	// between the last rejected and first accepted bound. Compare with the
	// "optimal" bounding baseline, where everyone broadcasts exact
	// coordinates to get a marginally smaller region:
	optCfg := cfg
	optCfg.Bound = cloak.BoundOptimal
	optUsers := make([]cloak.Point, len(users))
	copy(optUsers, users)
	optSys, err := cloak.NewSystem(optUsers, optCfg)
	if err != nil {
		log.Fatal(err)
	}
	optRes, err := optSys.Cloak(host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure bounding region area:  %.3g (no coordinates exposed)\n", res.Region.Area())
	fmt.Printf("optimal bounding region area: %.3g (every member's exact location exposed to the protocol)\n",
		optRes.Region.Area())
	fmt.Println("the gap between those areas is the price of non-exposure")
}
