// Nearest-POI: the paper's motivating application end to end. A user asks
// for the 5 nearest restaurants without revealing a location: the request
// carries only the cloaked region; the server answers with a candidate
// superset valid for *every* point in the region; the device refines
// locally. The server provably cannot tell where in the region the user
// is — all candidates are consistent with all positions.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"nonexposure/cloak"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 5,000 mobile users across three districts.
	districts := []cloak.Point{{X: 0.25, Y: 0.25}, {X: 0.7, Y: 0.3}, {X: 0.5, Y: 0.75}}
	users := make([]cloak.Point, 5000)
	for i := range users {
		d := districts[rng.Intn(len(districts))]
		users[i] = cloak.Point{
			X: d.X + (rng.Float64()-0.5)*0.08,
			Y: d.Y + (rng.Float64()-0.5)*0.08,
		}
	}

	// 1,500 restaurants, similarly distributed.
	pois := make([]cloak.Point, 1500)
	for i := range pois {
		d := districts[rng.Intn(len(districts))]
		pois[i] = cloak.Point{
			X: d.X + (rng.Float64()-0.5)*0.1,
			Y: d.Y + (rng.Float64()-0.5)*0.1,
		}
	}

	cfg := cloak.DefaultConfig()
	cfg.Delta = 0.008
	sys, err := cloak.NewSystem(users, cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cloak.NewPOIDatabase(pois, cfg.Cr)
	if err != nil {
		log.Fatal(err)
	}

	const host = 1234
	const wantK = 5

	// Phase 1 + 2: obtain the cloaked region.
	res, err := sys.Cloak(host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user %d 's request carries region [%.4f,%.4f]x[%.4f,%.4f] — %d users share it\n",
		host, res.Region.MinX, res.Region.MaxX, res.Region.MinY, res.Region.MaxY, res.ClusterSize)

	// The LBS server evaluates the query over the region.
	cands, cost := db.NearestCandidates(res.Region, wantK)
	fmt.Printf("server ships %d candidate POIs (cost %.0f message-units) — a superset valid anywhere in the region\n",
		len(cands), cost)

	// The device refines locally with its private location.
	best := db.ResolveNearest(cands, users[host], wantK)
	fmt.Printf("device resolves its true %d nearest restaurants locally:\n", wantK)
	for rank, id := range best {
		p := db.POI(id)
		dx, dy := p.X-users[host].X, p.Y-users[host].Y
		fmt.Printf("  #%d: POI %d at (%.4f, %.4f), distance %.4f\n",
			rank+1, id, p.X, p.Y, math.Hypot(dx, dy))
	}

	// Sanity: the candidates really do cover any position in the region —
	// check the region's corners too.
	for _, corner := range []cloak.Point{
		{X: res.Region.MinX, Y: res.Region.MinY},
		{X: res.Region.MaxX, Y: res.Region.MaxY},
	} {
		r := db.ResolveNearest(cands, corner, wantK)
		if len(r) != wantK {
			log.Fatalf("candidate set too small for corner %v", corner)
		}
	}
	fmt.Println("verified: the candidate set serves every position in the region")
}
