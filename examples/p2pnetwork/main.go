// P2P network: the distributed protocols running over actual message
// passing — every device is a goroutine, the host learns the proximity
// graph one peer message at a time, and bounding votes travel as
// request/reply pairs. The same run is repeated on a lossy network with
// bounded retries (the paper's Section VII robustness concern) and the
// results compared.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nonexposure/cloak"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	users := make([]cloak.Point, 3000)
	for i := range users {
		// One crowded plaza and a surrounding grid of streets.
		if i < 1500 {
			users[i] = cloak.Point{
				X: 0.5 + (rng.Float64()-0.5)*0.03,
				Y: 0.5 + (rng.Float64()-0.5)*0.03,
			}
		} else {
			users[i] = cloak.Point{
				X: 0.4 + rng.Float64()*0.2,
				Y: 0.4 + rng.Float64()*0.2,
			}
		}
	}

	cfg := cloak.DefaultConfig()
	cfg.Delta = 0.006

	// Perfect transport first.
	clean, err := cloak.NewNetworkSystem(users, cfg, cloak.NetworkConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer clean.Close()

	hosts := []int{10, 42, 900, 2100}
	fmt.Println("=== lossless network ===")
	regions := make(map[int]cloak.Region)
	for _, h := range hosts {
		res, err := clean.Cloak(h)
		if err != nil {
			log.Fatalf("host %d: %v", h, err)
		}
		regions[h] = res.Region
		fmt.Printf("host %4d: cluster %2d users, %3d clustering msgs, %4.0f bounding msgs, area %.2g\n",
			h, res.ClusterSize, res.ClusterComm, res.BoundMessages, res.Region.Area())
	}
	fmt.Printf("wire total: %d transmissions, %d lost\n\n", clean.MessagesSent(), clean.MessagesLost())

	// Same workload over a 25%-lossy network with retries.
	lossy, err := cloak.NewNetworkSystem(users, cfg, cloak.NetworkConfig{
		LossRate:   0.25,
		MaxRetries: 40,
		Seed:       99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lossy.Close()

	fmt.Println("=== 25% message loss, bounded retries ===")
	identical := 0
	for _, h := range hosts {
		res, err := lossy.Cloak(h)
		if err != nil {
			log.Fatalf("host %d: %v", h, err)
		}
		match := ""
		if res.Region == regions[h] {
			identical++
			match = " (identical to lossless run)"
		}
		fmt.Printf("host %4d: cluster %2d users, area %.2g%s\n",
			h, res.ClusterSize, res.Region.Area(), match)
	}
	fmt.Printf("wire total: %d transmissions, %d lost to injection\n",
		lossy.MessagesSent(), lossy.MessagesLost())
	fmt.Printf("robustness: %d/%d hosts got the identical cloaked region despite the loss\n",
		identical, len(hosts))
}
