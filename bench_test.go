// Package repro_test benchmarks regenerate every table and figure of the
// paper's evaluation (Section VI) plus the ablations DESIGN.md calls out.
//
// Benches run a density-preserving scaled-down population (see
// experiment.Params.Scaled) so a full -bench=. pass stays laptop-sized;
// `go run ./cmd/experiments -scale 1` reproduces paper scale. Each bench
// reports the figure's headline numbers via b.ReportMetric, so the series
// the paper plots appear directly in the benchmark output.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nonexposure/internal/anonymizer"
	"nonexposure/internal/core"
	"nonexposure/internal/dataset"
	"nonexposure/internal/epoch"
	"nonexposure/internal/experiment"
	"nonexposure/internal/geo"
	"nonexposure/internal/graph"
	"nonexposure/internal/lbs"
	"nonexposure/internal/metrics"
	"nonexposure/internal/workload"
	"nonexposure/internal/wpg"
)

// benchScale keeps a -bench=. run in the minutes range on one core.
const benchScale = 0.05 // ~5,238 users, 100 requests

var (
	envOnce sync.Once
	envVal  *experiment.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiment.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiment.NewEnv(experiment.DefaultParams().Scaled(benchScale))
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// --- Table I ------------------------------------------------------------

func BenchmarkTable1Render(b *testing.B) {
	p := experiment.DefaultParams()
	for i := 0; i < b.N; i++ {
		if tb := experiment.Table1(p); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Fig. 9: degree sweep ------------------------------------------------

func BenchmarkFig09DegreeSweep(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		commT, sizeT, err := experiment.RunDegreeSweep(p, []int{4, 8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, commT.Rows[2], "M16_comm_")
			reportRow(b, sizeT.Rows[2], "M16_size_")
		}
	}
}

// --- Fig. 10: POI payload sweep -------------------------------------------

func BenchmarkFig10POISize(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		tb, err := experiment.RunPOISizeSweep(p, []float64{0, 1, 2, 5, 10, 15, 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, tb.Rows[4], "ratio10_total_")
		}
	}
}

// --- Fig. 11: k sweep ------------------------------------------------------

func BenchmarkFig11KSweep(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		commT, sizeT, err := experiment.RunKSweep(p, []int{5, 10, 20, 30, 40, 50})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, commT.Rows[1], "k10_comm_")
			reportRow(b, sizeT.Rows[1], "k10_size_")
		}
	}
}

// --- Fig. 12: request-count sweep ------------------------------------------

func BenchmarkFig12RequestSweep(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	ss := []int{p.Requests / 2, p.Requests, p.Requests * 2, p.Requests * 4}
	for i := 0; i < b.N; i++ {
		commT, sizeT, err := experiment.RunRequestSweep(p, ss)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, commT.Rows[3], "S4x_comm_")
			reportRow(b, sizeT.Rows[3], "S4x_size_")
		}
	}
}

// --- Fig. 13: bounding algorithms -------------------------------------------

func BenchmarkFig13Bounding(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		a13, b13, c13, d13, err := experiment.RunBoundingSweep(p, []int{5, 10, 20, 50})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, a13.Rows[1], "k10_boundmsg_")
			reportRow(b, b13.Rows[1], "k10_reqratio_")
			reportRow(b, c13.Rows[1], "k10_total_")
			reportRow(b, d13.Rows[1], "k10_cpums_")
		}
	}
}

// reportRow publishes a figure-table row ("k", algo columns...) as custom
// benchmark metrics named prefix+column.
func reportRow(b *testing.B, row []string, prefix string) {
	b.Helper()
	for i, cell := range row {
		if i == 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscan(cell, &v); err == nil {
			b.ReportMetric(v, fmt.Sprintf("%scol%d", prefix, i))
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// Exact Eq. 3 dynamic program vs the paper's closed-form increments: CPU
// cost of deriving the policy (the paper's motivation for the closed form).
func BenchmarkAblationNBoundingClosedForm(b *testing.B) {
	m := core.CostModel{Cb: 1, Dist: core.UniformDist{U: 1}, Req: core.AreaCost{Cr: 1000}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 50; n++ {
			if _, err := m.NBoundingIncrement(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationNBoundingExactDP(b *testing.B) {
	m := core.CostModel{Cb: 1, Dist: core.UniformDist{U: 1}, Req: core.AreaCost{Cr: 1000}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.ExactNBounding(50); err != nil {
			b.Fatal(err)
		}
	}
}

// kNN expansion variants: the paper-style Prim frontier vs the stronger
// Dijkstra baseline vs no-relay. Reports resulting mean region area.
func BenchmarkAblationKNNVariants(b *testing.B) {
	variants := []struct {
		name string
		opt  core.KNNOptions
	}{
		{"prim", core.KNNOptions{}},
		{"dijkstra", core.KNNOptions{Expansion: core.KNNDijkstra}},
		{"prim-norelay", core.KNNOptions{NoRelay: true}},
		{"revised", core.KNNOptions{DegreeTieBreak: true}},
	}
	env := benchEnv(b)
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reg := core.NewRegistry(env.Graph.NumVertices())
				var areaSum float64
				var formed int
				for host := int32(0); host < 200; host++ {
					c, _, err := core.KNNCluster(core.GraphSource{G: env.Graph}, host*13, 10, reg, v.opt)
					if err != nil {
						continue
					}
					r := geo.EmptyRect()
					for _, m := range c.Members {
						r = r.ExpandToInclude(env.Points[m])
					}
					areaSum += r.Area()
					formed++
				}
				if i == 0 && formed > 0 {
					b.ReportMetric(areaSum/float64(formed)*1e6, "area_1e-6")
				}
			}
		})
	}
}

// Centralized Algorithm 1 (safe removal on the MSF) vs the coalesced
// dendrogram cut: quality (mean cluster size) and speed of the two
// partitioning strategies.
func BenchmarkAblationCentralizedSafeRemoval(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clusters, _ := core.CentralizedTConn(env.Graph, 10)
		if i == 0 {
			total := 0
			for _, c := range clusters {
				total += c.Size()
			}
			b.ReportMetric(float64(total)/float64(len(clusters)), "mean_cluster_size")
		}
	}
}

func BenchmarkAblationCentralizedDendrogramCut(b *testing.B) {
	env := benchEnv(b)
	edges := env.Graph.Edges()
	n := env.Graph.NumVertices()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := graph.BuildDendrogram(n, edges)
		count, total := 0, 0
		d.CutMinSize(10, func(node int32) {
			count++
			total += int(d.Nodes[node].Size)
		})
		if i == 0 && count > 0 {
			b.ReportMetric(float64(total)/float64(count), "mean_cluster_size")
		}
	}
}

// Privacy loss (Section VII future work): mean exposure-interval width per
// bounding policy; larger is more private.
func BenchmarkAblationPrivacyLoss(b *testing.B) {
	env := benchEnv(b)
	policies := []core.IncrementPolicy{
		core.LinearIncrement{Step: 0.1},
		core.ExpIncrement{Init: 0.25},
		core.NewSecureIncrementForCluster(1, 1000, 10),
	}
	reg := core.NewRegistry(env.Graph.NumVertices())
	c, _, err := core.DistributedTConn(core.GraphSource{G: env.Graph}, 1, 10, reg)
	if err != nil {
		b.Fatal(err)
	}
	scale := core.DefaultRectScale(c.Size(), env.Graph.NumVertices())
	for _, pol := range policies {
		b.Run(pol.Name(), func(b *testing.B) {
			var exposure float64
			for i := 0; i < b.N; i++ {
				res, err := core.BoundRect(env.Points, c.Members, env.Points[1], scale, pol, 1)
				if err != nil {
					b.Fatal(err)
				}
				exposure = res.MeanExposure
			}
			b.ReportMetric(exposure*1e3, "exposure_1e-3")
		})
	}
}

// Dataset sensitivity: the same clustering workload on the three
// generators.
func BenchmarkAblationDatasets(b *testing.B) {
	for _, ds := range []string{"california-like", "uniform", "roadlike"} {
		b.Run(ds, func(b *testing.B) {
			p := experiment.DefaultParams().Scaled(benchScale)
			p.Dataset = ds
			env, err := experiment.NewEnv(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm, err := experiment.RunClusteringWorkload(env, p.K, p.Requests, experiment.AlgoTConnDist)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(cm.AvgComm, "avg_comm")
					b.ReportMetric(cm.AvgArea*1e6, "avg_area_1e-6")
				}
			}
		})
	}
}

// Extension: non-exposure vs the exposure-based prior schemes (quadtree,
// hilbASR) — the related-work comparison the paper motivates but does not
// plot.
func BenchmarkExtensionExposureBaselines(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		tb, err := experiment.RunExposureComparison(p, []int{10})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, tb.Rows[0], "k10_area_")
		}
	}
}

// Extension: continuous cloaking under mobility (Section VII) — per-epoch
// re-cloaking cost and region stability while users wander locally.
func BenchmarkExtensionMobility(b *testing.B) {
	p := experiment.DefaultParams().Scaled(benchScale)
	for i := 0; i < b.N; i++ {
		tb, err := experiment.RunMobilitySweep(p, 3, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRow(b, tb.Rows[2], "epoch2_")
		}
	}
}

// --- Concurrent cloak serving -------------------------------------------------

var (
	cloakGraphOnce sync.Once
	cloakGraphVal  *wpg.Graph
)

// concurrentCloakGraph is a multi-component WPG (well-separated Gaussian
// blobs) so component-parallel clustering has independent work per core.
func concurrentCloakGraph(b *testing.B) *wpg.Graph {
	b.Helper()
	cloakGraphOnce.Do(func() {
		pts := dataset.GaussianClusters(24000, 32, 0.012, 7)
		cloakGraphVal = wpg.Build(pts, wpg.BuildParams{Delta: 0.016, MaxPeers: 10})
	})
	return cloakGraphVal
}

// BenchmarkConcurrentCloakFirstRequest measures the one-time whole-graph
// clustering a fresh anonymizer performs on its first request: the serial
// baseline vs the component-parallel build (workers = GOMAXPROCS).
func BenchmarkConcurrentCloakFirstRequest(b *testing.B) {
	g := concurrentCloakGraph(b)
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := anonymizer.NewServer(g, anonymizer.WithK(10), anonymizer.WithWorkers(bench.workers))
				if _, cost, err := s.Cloak(context.Background(), 0); err != nil || cost == 0 {
					b.Fatalf("first request: cost=%d err=%v", cost, err)
				}
			}
			if comps := len(g.Components()); b.N > 0 {
				b.ReportMetric(float64(comps), "components")
			}
		})
	}
}

// BenchmarkConcurrentCloakSteadyState measures post-build Cloak
// throughput. "locked" serializes every request behind one mutex — the
// seed's original serving path — while "shared" is the current design
// where requests ride the registry's RWMutex read path.
func BenchmarkConcurrentCloakSteadyState(b *testing.B) {
	g := concurrentCloakGraph(b)
	n := int32(g.NumVertices())
	newBuilt := func() *anonymizer.Server {
		s := anonymizer.NewServer(g, anonymizer.WithK(10))
		if _, _, err := s.Cloak(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("locked", func(b *testing.B) {
		s := newBuilt()
		var mu sync.Mutex
		b.SetParallelism(8) // oversubscribe so lock handoff shows on any core count
		b.RunParallel(func(pb *testing.PB) {
			host := int32(1)
			for pb.Next() {
				host = (host*48271 + 1) % n
				mu.Lock()
				s.Cloak(context.Background(), host) // undersized hosts still exercise the path
				mu.Unlock()
			}
		})
	})
	b.Run("shared", func(b *testing.B) {
		s := newBuilt()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			host := int32(1)
			for pb.Next() {
				host = (host*48271 + 1) % n
				s.Cloak(context.Background(), host)
			}
		})
	})
}

// BenchmarkEpochCloakDuringRebuild measures the epoch pipeline's
// serving path: "quiet" is steady-state cloaking against a published
// generation, "rebuilding" runs the same load while a background
// uploader keeps triggering fresh epoch builds. The two must stay close
// (the atomic-pointer swap is the whole point: rebuilds never block the
// read path).
func BenchmarkEpochCloakDuringRebuild(b *testing.B) {
	g := concurrentCloakGraph(b)
	n := int32(g.NumVertices())
	uploads := func() map[int32][]epoch.RankedPeer {
		out := make(map[int32][]epoch.RankedPeer, n)
		for v := int32(0); v < n; v++ {
			var peers []epoch.RankedPeer
			for _, e := range g.Neighbors(v) {
				peers = append(peers, epoch.RankedPeer{Peer: e.To, Rank: e.W})
			}
			out[v] = peers
		}
		return out
	}()
	newLive := func(b *testing.B) *epoch.Manager {
		b.Helper()
		m, err := epoch.New(int(n), epoch.WithK(10))
		if err != nil {
			b.Fatal(err)
		}
		for v, peers := range uploads {
			if err := m.Upload(context.Background(), epoch.UploadRequest{User: v, Peers: peers}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Rotate(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := m.Sync(context.Background()); err != nil {
			b.Fatal(err)
		}
		return m
	}
	run := func(b *testing.B, m *epoch.Manager) {
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			host := int32(1)
			for pb.Next() {
				host = (host*48271 + 1) % n
				m.Cloak(context.Background(), host)
			}
		})
	}
	b.Run("quiet", func(b *testing.B) {
		m := newLive(b)
		defer m.Close()
		run(b, m)
	})
	b.Run("rebuilding", func(b *testing.B) {
		m := newLive(b)
		defer m.Close()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			// Keep a build in flight: nudge one user and rotate, serially.
			defer close(done)
			rank := int32(2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rank++
				peers := append([]epoch.RankedPeer(nil), uploads[0]...)
				if len(peers) > 0 {
					peers[0].Rank = 1 + rank%7
				}
				if err := m.Upload(context.Background(), epoch.UploadRequest{User: 0, Peers: peers}); err != nil {
					return
				}
				if _, err := m.Rotate(context.Background()); err != nil {
					return
				}
				m.Sync(context.Background())
			}
		}()
		run(b, m)
		close(stop)
		<-done
		b.ReportMetric(float64(m.Status().Builds), "rebuilds")
	})
}

// BenchmarkEpochIncrementalRebuild measures one epoch rebuild under
// partial churn: each iteration re-uploads a fixed fraction of the
// population (whole WPG components, so the dirty set maps onto whole
// shards), rotates, and waits for the generation to publish. "full"
// disables the incremental path — every shard re-clusters from scratch
// regardless of churn. "incremental" splices every clean shard from the
// previous generation, so rebuild latency scales with the churned
// fraction instead of the population.
func BenchmarkEpochIncrementalRebuild(b *testing.B) {
	pts := dataset.GaussianClusters(20000, 200, 0.004, 11)
	g := wpg.Build(pts, wpg.BuildParams{Delta: 0.008, MaxPeers: 10})
	uploads := make(map[int32][]epoch.RankedPeer, g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		var peers []epoch.RankedPeer
		for _, e := range g.Neighbors(v) {
			peers = append(peers, epoch.RankedPeer{Peer: e.To, Rank: e.W})
		}
		uploads[v] = peers
	}
	// churnSet gathers whole components until they cover frac of the
	// population, so each iteration dirties a predictable share of shards.
	churnSet := func(frac float64) []int32 {
		target := int(frac * float64(g.NumVertices()))
		var users []int32
		for _, comp := range g.Components() {
			if len(users) >= target {
				break
			}
			users = append(users, comp...)
		}
		return users
	}
	run := func(b *testing.B, frac float64, incremental bool) {
		m, err := epoch.New(g.NumVertices(), epoch.WithK(10), epoch.WithIncremental(incremental))
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		ctx := context.Background()
		for v, peers := range uploads {
			if err := m.Upload(ctx, epoch.UploadRequest{User: v, Peers: peers}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Rotate(ctx); err != nil {
			b.Fatal(err)
		}
		if err := m.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		churn := churnSet(frac)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range churn {
				peers := append([]epoch.RankedPeer(nil), uploads[u]...)
				if len(peers) > 0 {
					peers[0].Rank += int32(1 + i%3) // a real rank change every iteration
				}
				if err := m.Upload(ctx, epoch.UploadRequest{User: u, Peers: peers}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := m.Rotate(ctx); err != nil {
				b.Fatal(err)
			}
			if err := m.Sync(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		gen := m.Current()
		if gen == nil || gen.BuildErr != nil {
			b.Fatalf("final generation = %+v", gen)
		}
		if gen.ShardsTotal > 0 {
			b.ReportMetric(float64(gen.ShardsRebuilt), "shards_rebuilt")
			b.ReportMetric(float64(gen.ShardsTotal), "shards_total")
		}
	}
	b.Run("full/10pct", func(b *testing.B) { run(b, 0.10, false) })
	b.Run("incremental/1pct", func(b *testing.B) { run(b, 0.01, true) })
	b.Run("incremental/10pct", func(b *testing.B) { run(b, 0.10, true) })
	b.Run("incremental/50pct", func(b *testing.B) { run(b, 0.50, true) })
}

// --- Component micro-benchmarks ----------------------------------------------

func BenchmarkWPGBuild(b *testing.B) {
	pts := dataset.CaliforniaLike(10000, 1)
	params := wpg.BuildParams{Delta: 2e-3 * 3.24, MaxPeers: 10} // density-matched
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := wpg.Build(pts, params)
		if g.NumVertices() != 10000 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkCentralizedTConn(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clusters, _ := core.CentralizedTConn(env.Graph, 10)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkDistributedTConnPerRequest(b *testing.B) {
	env := benchEnv(b)
	n := env.Graph.NumVertices()
	b.ReportAllocs()
	reg := core.NewRegistry(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := int32(i*37) % int32(n)
		if _, _, err := core.DistributedTConn(core.GraphSource{G: env.Graph}, host, 10, reg); err != nil {
			reg = core.NewRegistry(n) // pool exhausted: start a fresh world
		}
	}
}

func BenchmarkKNNPerRequest(b *testing.B) {
	env := benchEnv(b)
	n := env.Graph.NumVertices()
	b.ReportAllocs()
	reg := core.NewRegistry(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := int32(i*37) % int32(n)
		if _, _, err := core.KNNCluster(core.GraphSource{G: env.Graph}, host, 10, reg, core.KNNOptions{}); err != nil {
			reg = core.NewRegistry(n)
		}
	}
}

func BenchmarkSecureBoundRect(b *testing.B) {
	env := benchEnv(b)
	reg := core.NewRegistry(env.Graph.NumVertices())
	c, _, err := core.DistributedTConn(core.GraphSource{G: env.Graph}, 2, 10, reg)
	if err != nil {
		b.Fatal(err)
	}
	pol := core.NewSecureIncrementForCluster(1, 1000, c.Size())
	scale := core.DefaultRectScale(c.Size(), env.Graph.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BoundRect(env.Points, c.Members, env.Points[2], scale, pol, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLBSRangeQuery(b *testing.B) {
	env := benchEnv(b)
	r := geo.Rect{Min: geo.Point{X: 0.4, Y: 0.4}, Max: geo.Point{X: 0.42, Y: 0.42}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.LBS.Index().Range(r)
	}
}

func BenchmarkLBSRangeNN(b *testing.B) {
	pts := dataset.Uniform(20000, 3)
	idx := lbs.NewGridIndex(pts, 0)
	r := geo.Rect{Min: geo.Point{X: 0.5, Y: 0.5}, Max: geo.Point{X: 0.51, Y: 0.51}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids := idx.RangeNN(r, 5); len(ids) < 5 {
			b.Fatal("candidate set too small")
		}
	}
}

func BenchmarkDendrogramBuild(b *testing.B) {
	env := benchEnv(b)
	edges := env.Graph.Edges()
	n := env.Graph.NumVertices()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := graph.BuildBinaryDendrogram(n, edges); d.NumLeaves != n {
			b.Fatal("bad dendrogram")
		}
	}
}

// BenchmarkUploadThroughputZipf measures upload ingestion throughput on
// a Zipf(1.0)-skewed stream over 20k users — the contention workload
// the buffered ingest path exists for. "direct" serializes every Upload
// on the epoch manager lock; "buffered" absorbs them into per-shard
// ingest buffers (one per worker) and reconciles once at the end, which
// is included in the timing. A background cloaker hammers the read path
// throughout and its p99 is reported alongside, pinning that ingestion
// pressure does not leak into serving latency. Worker scaling is bound
// by GOMAXPROCS — on a single-core box the buffered win shows up as
// less lock traffic per upload, not as parallel speedup.
func BenchmarkUploadThroughputZipf(b *testing.B) {
	pts := dataset.GaussianClusters(20000, 200, 0.004, 11)
	g := wpg.Build(pts, wpg.BuildParams{Delta: 0.008, MaxPeers: 10})
	n := g.NumVertices()
	uploads := make(map[int32][]epoch.RankedPeer, n)
	for v := int32(0); v < int32(n); v++ {
		var peers []epoch.RankedPeer
		for _, e := range g.Neighbors(v) {
			peers = append(peers, epoch.RankedPeer{Peer: e.To, Rank: e.W})
		}
		uploads[v] = peers
	}
	hosts, err := workload.ZipfHosts(n, 1<<16, 1.0, 13)
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, workers, buffers int) {
		m, err := epoch.New(n, epoch.WithK(10), epoch.WithIngestBuffers(buffers))
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		ctx := context.Background()
		for v, peers := range uploads {
			if err := m.Upload(ctx, epoch.UploadRequest{User: v, Peers: peers}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Rotate(ctx); err != nil {
			b.Fatal(err)
		}
		if err := m.Sync(ctx); err != nil {
			b.Fatal(err)
		}

		reqm := metrics.NewRequestMetrics()
		stop := make(chan struct{})
		var cloaker sync.WaitGroup
		cloaker.Add(1)
		go func() {
			defer cloaker.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				host := hosts[i%len(hosts)]
				t0 := time.Now()
				_, err := m.Cloak(ctx, host)
				reqm.Observe("cloak", time.Since(t0), err == nil)
			}
		}()

		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N / workers
		extra := b.N % workers
		for w := 0; w < workers; w++ {
			count := per
			if w < extra {
				count++
			}
			wg.Add(1)
			go func(w, count int) {
				defer wg.Done()
				idx := (w * 7919) % len(hosts)
				for i := 0; i < count; i++ {
					u := hosts[idx]
					if idx++; idx == len(hosts) {
						idx = 0
					}
					peers := append([]epoch.RankedPeer(nil), uploads[u]...)
					if len(peers) > 0 {
						peers[0].Rank = int32(1 + (i+w)%7) // a real rank change per upload
					}
					if err := m.Upload(ctx, epoch.UploadRequest{User: u, Peers: peers}); err != nil {
						b.Error(err)
						return
					}
				}
			}(w, count)
		}
		wg.Wait()
		if buffers > 0 {
			if err := m.Reconcile(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		cloaker.Wait()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "uploads/s")
		if snap := reqm.Snapshot(); snap.Total > 0 {
			b.ReportMetric(float64(snap.P99.Nanoseconds()), "cloak_p99_ns")
		}
	}
	for _, bb := range []struct {
		name             string
		workers, buffers int
	}{
		{"direct/workers=1", 1, 0},
		{"direct/workers=4", 4, 0},
		{"buffered/workers=1", 1, 1},
		{"buffered/workers=2", 2, 2},
		{"buffered/workers=4", 4, 4},
	} {
		b.Run(bb.name, func(b *testing.B) { run(b, bb.workers, bb.buffers) })
	}
}
